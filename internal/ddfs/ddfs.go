// Package ddfs implements the paper's deduplication prototype (Section
// 7.4): a Data Domain File System-like metadata pipeline that detects
// duplicates with an in-memory fingerprint cache, a Bloom filter, and an
// on-disk fingerprint index, storing unique chunks in logical order in
// containers and prefetching container fingerprints on index hits.
//
// The prototype tracks the on-disk metadata access volume in the paper's
// three categories:
//
//   - update access: writing the metadata of newly stored unique chunks to
//     the fingerprint index (steps S2/S3);
//   - index access: on-disk fingerprint index lookups (step S3);
//   - loading access: reading a whole container's fingerprints into the
//     cache on an index hit (step S4).
//
// Only metadata flow is simulated — chunk data I/O and crypto are outside
// the scope of the paper's Section 7.4 measurement, as in the original.
package ddfs

import (
	"fmt"

	"freqdedup/internal/bloom"
	"freqdedup/internal/container"
	"freqdedup/internal/fphash"
	"freqdedup/internal/lru"
	"freqdedup/internal/trace"
)

// EntryBytes is the on-disk metadata size per fingerprint (paper: 32 B).
const EntryBytes = 32

// Config configures the prototype.
type Config struct {
	// ContainerBytes is the container capacity (paper: 4 MB).
	ContainerBytes int
	// CacheBytes bounds the in-memory fingerprint cache (paper: 512 MB or
	// 4 GB; scale with the dataset). Zero means unbounded.
	CacheBytes uint64
	// ExpectedFingerprints sizes the Bloom filter.
	ExpectedFingerprints uint64
	// BloomFPP is the Bloom filter's target false-positive rate (paper:
	// 0.01).
	BloomFPP float64
}

// DefaultConfig returns the paper's configuration with an unbounded cache;
// set CacheBytes to model a constrained cache.
func DefaultConfig(expectedFPs uint64) Config {
	return Config{
		ContainerBytes:       container.DefaultBytes,
		CacheBytes:           0,
		ExpectedFingerprints: expectedFPs,
		BloomFPP:             0.01,
	}
}

// AccessStats is the per-category on-disk metadata access volume in bytes.
type AccessStats struct {
	UpdateBytes  uint64
	IndexBytes   uint64
	LoadingBytes uint64
}

// Total returns the overall metadata access volume.
func (a AccessStats) Total() uint64 { return a.UpdateBytes + a.IndexBytes + a.LoadingBytes }

// add accumulates o into a.
func (a *AccessStats) add(o AccessStats) {
	a.UpdateBytes += o.UpdateBytes
	a.IndexBytes += o.IndexBytes
	a.LoadingBytes += o.LoadingBytes
}

// System is the DDFS-like deduplication prototype.
type System struct {
	cfg        Config
	index      map[fphash.Fingerprint]int // on-disk fingerprint index: fp -> container ID
	bloom      *bloom.Filter
	cache      *lru.Cache[fphash.Fingerprint, int] // fingerprint cache: fp -> container ID
	containers *container.Store
	buffered   map[fphash.Fingerprint]struct{} // fps in the not-yet-flushed container

	total     AccessStats
	dupHits   uint64 // duplicates detected (cache, buffer, or index)
	uniques   uint64 // unique chunks stored
	cacheHits uint64 // duplicates resolved by the cache without disk access
}

// New returns an empty prototype. It panics on a non-positive container
// size or an out-of-range Bloom FPP, mirroring the underlying constructors.
func New(cfg Config) *System {
	if cfg.ContainerBytes == 0 {
		cfg.ContainerBytes = container.DefaultBytes
	}
	if cfg.BloomFPP == 0 {
		cfg.BloomFPP = 0.01
	}
	if cfg.ExpectedFingerprints == 0 {
		cfg.ExpectedFingerprints = 1 << 20
	}
	// Pre-size the index for the expected fingerprint population (it holds
	// every unique chunk eventually) and the open-container buffer for one
	// container's worth of entries (4 KB chunks, the smallest the paper's
	// datasets use, bound the count), so neither rehashes on the hot path.
	bufferedHint := cfg.ContainerBytes / 4096
	return &System{
		cfg:        cfg,
		index:      make(map[fphash.Fingerprint]int, cfg.ExpectedFingerprints),
		bloom:      bloom.NewWithEstimates(cfg.ExpectedFingerprints, cfg.BloomFPP),
		cache:      lru.New[fphash.Fingerprint, int](cfg.CacheBytes, nil),
		containers: container.New(cfg.ContainerBytes),
		buffered:   make(map[fphash.Fingerprint]struct{}, bufferedHint),
	}
}

// StoreBackup processes one backup's ciphertext chunk stream in logical
// order and returns the metadata access volume it caused.
func (s *System) StoreBackup(b *trace.Backup) AccessStats {
	var st AccessStats
	for _, c := range b.Chunks {
		s.process(c, &st)
	}
	// Flush the trailing partial container so its index updates are
	// attributed to this backup, as a backup completion would.
	s.flushCurrent(&st)
	s.total.add(st)
	return st
}

func (s *System) process(c trace.ChunkRef, st *AccessStats) {
	// Step S1: fingerprint cache.
	if _, ok := s.cache.Get(c.FP); ok {
		s.dupHits++
		s.cacheHits++
		return
	}
	// Chunks buffered in the open container are duplicates too; DDFS
	// resolves them in memory.
	if _, ok := s.buffered[c.FP]; ok {
		s.dupHits++
		return
	}
	// Step S2: Bloom filter.
	if !s.bloom.Contains(c.FP) {
		s.storeUnique(c, st)
		return
	}
	// Step S3: on-disk fingerprint index lookup.
	st.IndexBytes += EntryBytes
	id, ok := s.index[c.FP]
	if !ok {
		// Bloom false positive: the chunk is in fact unique.
		s.storeUnique(c, st)
		return
	}
	// Step S4: duplicate — load the whole container's fingerprints into
	// the cache (chunk-locality prefetch).
	s.dupHits++
	s.loadContainer(id, st)
}

// storeUnique appends the chunk to the open container, updating the Bloom
// filter; a full container is flushed to disk with its index updates.
func (s *System) storeUnique(c trace.ChunkRef, st *AccessStats) {
	s.uniques++
	s.bloom.Add(c.FP)
	before := s.containers.Count()
	// The metadata simulation runs on the in-memory backend, which never
	// fails (see container.MemBackend).
	if _, err := s.containers.Append(container.Entry{FP: c.FP, Size: c.Size}); err != nil {
		panic(fmt.Sprintf("ddfs: append on memory backend: %v", err))
	}
	if s.containers.Count() > before && len(s.buffered) > 0 {
		// Append sealed the previous container and opened a new one:
		// account for the flushed container's index updates.
		s.accountFlush(before-1, st)
	}
	s.buffered[c.FP] = struct{}{}
}

// flushCurrent seals the in-progress container, if any.
func (s *System) flushCurrent(st *AccessStats) {
	c, err := s.containers.Flush()
	if err != nil {
		panic(fmt.Sprintf("ddfs: flush on memory backend: %v", err))
	}
	if c == nil {
		return
	}
	s.accountFlush(c.ID, st)
}

// accountFlush writes the flushed container's fingerprints to the on-disk
// index (update access) and records their container ID.
func (s *System) accountFlush(id int, st *AccessStats) {
	c, err := s.containers.Container(id)
	if err != nil {
		panic(fmt.Sprintf("ddfs: flushed container %d missing: %v", id, err))
	}
	for _, e := range c.Entries {
		s.index[e.FP] = id
		delete(s.buffered, e.FP)
		st.UpdateBytes += EntryBytes
	}
}

// loadContainer reads a container's fingerprints from disk into the cache
// (loading access) — the paper's step S4.
func (s *System) loadContainer(id int, st *AccessStats) {
	c, err := s.containers.Container(id)
	if err != nil {
		panic(fmt.Sprintf("ddfs: indexed container %d missing: %v", id, err))
	}
	st.LoadingBytes += uint64(len(c.Entries)) * EntryBytes
	for _, e := range c.Entries {
		s.cache.Put(e.FP, id, EntryBytes)
	}
}

// Totals returns the cumulative metadata access volume across all backups.
func (s *System) Totals() AccessStats { return s.total }

// UniqueChunks returns the number of unique chunks stored.
func (s *System) UniqueChunks() uint64 { return s.uniques }

// Duplicates returns the number of duplicate chunks detected.
func (s *System) Duplicates() uint64 { return s.dupHits }

// CacheHitRate returns the fraction of duplicates resolved by the
// in-memory fingerprint cache without disk access.
func (s *System) CacheHitRate() float64 {
	if s.dupHits == 0 {
		return 0
	}
	return float64(s.cacheHits) / float64(s.dupHits)
}

// Containers returns the number of containers written (including the open
// one, if non-empty).
func (s *System) Containers() int { return s.containers.Count() }
