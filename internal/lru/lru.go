// Package lru provides a least-recently-used cache with a generic
// comparable key. It serves two roles in the reproduction: keyed by chunk
// fingerprints it is the in-memory fingerprint cache of the DDFS-like
// prototype (Section 7.4, steps S1 and S4), and keyed by container IDs it
// is the container read cache of the parallel restore pipeline — both
// evict the least-recently-used entries when full.
//
// The cache tracks an abstract cost per entry so it can be bounded by
// total metadata bytes (the paper bounds the fingerprint cache at 512 MB or
// 4 GB of 32-byte metadata entries) or, with unit costs, by entry count
// (the restore pipeline bounds its cache in containers).
package lru

import (
	"container/list"
)

// Cache is a cost-bounded LRU cache. The zero value is not usable;
// construct with New. A Cache is not safe for concurrent use; callers
// that share one across goroutines own its locking.
type Cache[K comparable, V any] struct {
	capacity  uint64 // max total cost; 0 means unbounded
	used      uint64
	ll        *list.List
	items     map[K]*list.Element
	onEvict   func(K, V)
	hits      uint64
	misses    uint64
	evictions uint64
}

type entry[K comparable, V any] struct {
	key  K
	val  V
	cost uint64
}

// New creates a cache bounded at capacity total cost. capacity == 0 means
// unbounded. onEvict, if non-nil, is called for each evicted entry.
func New[K comparable, V any](capacity uint64, onEvict func(K, V)) *Cache[K, V] {
	return &Cache[K, V]{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[K]*list.Element),
		onEvict:  onEvict,
	}
}

// Get looks up a key, marking it most recently used on a hit.
func (c *Cache[K, V]) Get(key K) (V, bool) {
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		return el.Value.(*entry[K, V]).val, true
	}
	c.misses++
	var zero V
	return zero, false
}

// Contains reports whether the key is cached without updating recency or
// hit statistics.
func (c *Cache[K, V]) Contains(key K) bool {
	_, ok := c.items[key]
	return ok
}

// Put inserts or updates an entry with the given cost and evicts
// least-recently-used entries until the cache fits its capacity. A single
// entry larger than the whole capacity is not admitted.
func (c *Cache[K, V]) Put(key K, val V, cost uint64) {
	if el, ok := c.items[key]; ok {
		e := el.Value.(*entry[K, V])
		c.used -= e.cost
		e.val, e.cost = val, cost
		c.used += cost
		c.ll.MoveToFront(el)
		c.evict()
		return
	}
	if c.capacity != 0 && cost > c.capacity {
		return
	}
	el := c.ll.PushFront(&entry[K, V]{key: key, val: val, cost: cost})
	c.items[key] = el
	c.used += cost
	c.evict()
}

func (c *Cache[K, V]) evict() {
	if c.capacity == 0 {
		return
	}
	for c.used > c.capacity {
		el := c.ll.Back()
		if el == nil {
			return
		}
		e := el.Value.(*entry[K, V])
		c.ll.Remove(el)
		delete(c.items, e.key)
		c.used -= e.cost
		c.evictions++
		if c.onEvict != nil {
			c.onEvict(e.key, e.val)
		}
	}
}

// Remove deletes a key if present, returning whether it was cached.
func (c *Cache[K, V]) Remove(key K) bool {
	el, ok := c.items[key]
	if !ok {
		return false
	}
	e := el.Value.(*entry[K, V])
	c.ll.Remove(el)
	delete(c.items, key)
	c.used -= e.cost
	return true
}

// Len returns the number of cached entries.
func (c *Cache[K, V]) Len() int { return len(c.items) }

// Used returns the total cost of cached entries.
func (c *Cache[K, V]) Used() uint64 { return c.used }

// Capacity returns the configured cost capacity (0 = unbounded).
func (c *Cache[K, V]) Capacity() uint64 { return c.capacity }

// Stats returns cumulative hit, miss, and eviction counts.
func (c *Cache[K, V]) Stats() (hits, misses, evictions uint64) {
	return c.hits, c.misses, c.evictions
}

// Clear empties the cache without invoking eviction callbacks.
func (c *Cache[K, V]) Clear() {
	c.ll.Init()
	c.items = make(map[K]*list.Element)
	c.used = 0
}
