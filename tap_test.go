package freqdedup

// End-to-end acceptance of the adversary tap: a file-backed repository
// created with WithUploadObserver records every Backup's post-encryption
// upload stream in traces.fdt; after a close and a reopen the replayed
// traces drive the streaming attack engine, and the paper's qualitative
// ordering holds — the locality attack infers a nonzero fraction of the
// stream under baseline MLE and strictly less under MinHash+scrambling.

import (
	"bytes"
	"context"
	"math/rand"
	"testing"

	"freqdedup/internal/attack"
	"freqdedup/internal/defense"
	"freqdedup/internal/trace"
)

// tapWorkload builds three versions of a backed-up byte stream with the
// structure the attacks exploit: whole-file duplication (a hot head of
// heavily repeated files plus singly stored files) and cross-version
// stability (each version edits a few files and appends new ones, leaving
// the rest byte-identical in place).
func tapWorkload() [][]byte {
	rng := rand.New(rand.NewSource(7))
	file := func(n int) []byte {
		b := make([]byte, n)
		rng.Read(b)
		return b
	}
	files := make([][]byte, 40)
	for i := range files {
		files[i] = file(16<<10 + rng.Intn(32<<10))
	}
	// Hot head: file 0 copied 16x, file 1 8x, file 2 4x, file 3 2x —
	// geometric separation keeps frequency ranks stable across versions.
	var order []int
	for i, copies := range []int{16, 8, 4, 2} {
		for c := 0; c < copies; c++ {
			order = append(order, i)
		}
	}
	for i := 4; i < len(files); i++ {
		order = append(order, i)
	}
	rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })

	concat := func() []byte {
		var buf bytes.Buffer
		for _, idx := range order {
			buf.Write(files[idx])
		}
		return buf.Bytes()
	}

	var versions [][]byte
	versions = append(versions, concat())
	for v := 1; v < 3; v++ {
		// Clustered churn: rewrite three cold files, append two new ones.
		for i := 0; i < 3; i++ {
			idx := 4 + rng.Intn(len(files)-4)
			files[idx] = file(len(files[idx]))
		}
		for i := 0; i < 2; i++ {
			files = append(files, file(16<<10+rng.Intn(16<<10)))
			order = append(order, len(files)-1)
		}
		versions = append(versions, concat())
	}
	return versions
}

func TestTapEndToEndAttack(t *testing.T) {
	dir := t.TempDir()
	repo, err := CreateRepository(dir, WithUploadObserver(nil))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	names := []string{"mon", "tue", "wed"}
	for i, data := range tapWorkload() {
		if _, err := repo.Backup(ctx, names[i], bytes.NewReader(data)); err != nil {
			t.Fatal(err)
		}
	}
	if err := repo.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen cold: the taps must replay from traces.fdt alone, without
	// the option being passed again.
	reopened, err := OpenRepository(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	log := reopened.TraceLog()
	if log == nil {
		t.Fatal("reopened repository lost its trace log")
	}
	taps := log.Backups()
	if len(taps) != 3 {
		t.Fatalf("replayed %d taps, want 3", len(taps))
	}
	for i, tap := range taps {
		if tap.Label != names[i] {
			t.Fatalf("tap %d labeled %q, want %q", i, tap.Label, names[i])
		}
		if tap.Chunks == 0 {
			t.Fatalf("tap %q is empty", tap.Label)
		}
	}

	// The repository encrypts convergently: its tapped ciphertext stream
	// is a deterministic 1-1 relabeling of the plaintext chunk stream,
	// preserving frequencies, sizes, and locality. Treating the replayed
	// taps as the fingerprint streams, simulate the paper's schemes on
	// the latest backup and attack each with the auxiliary prior tap —
	// the Section 7 methodology on real storage-stack traffic.
	aux, err := taps[0].Materialize()
	if err != nil {
		t.Fatal(err)
	}
	target, err := taps[2].Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if got := target.UniqueCount(); got < 40 {
		t.Fatalf("target tap has only %d unique chunks — workload too small to attack", got)
	}

	// Score each scheme with the locality attack in known-plaintext mode
	// at a 2% leakage rate — the paper's Figure 10 methodology (real CDC
	// streams chunk repeated files into tied-frequency interior chunks,
	// so ciphertext-only rank seeding is exactly as unreliable as the
	// paper says classical frequency analysis is; leaked seeds isolate
	// what the defenses actually defend: the locality walk).
	const leakRate = 0.02
	cfg := attack.Config{U: 1, V: 15, W: 200000, Mode: attack.KnownPlaintext}
	rate := func(scheme defense.Scheme) (float64, defense.Encrypted) {
		enc, err := defense.Encrypt(target, scheme, 11)
		if err != nil {
			t.Fatal(err)
		}
		c := cfg
		c.Leaked = attack.SampleLeaked(enc.Backup, enc.Truth, leakRate, 42)
		res, err := attack.NewLocality(c).Run(attack.BackupSource(enc.Backup), attack.BackupSource(aux), attack.Params{})
		if err != nil {
			t.Fatal(err)
		}
		return res.InferenceRate(enc.Truth), enc
	}

	mle, encMLE := rate(defense.SchemeMLE)
	combined, _ := rate(defense.SchemeCombined)
	if mle <= 0 {
		t.Fatalf("locality attack against baseline MLE inferred nothing (rate %v)", mle)
	}
	if mle <= 2*leakRate {
		t.Fatalf("locality attack against MLE never expanded past its leaked seeds (rate %v)", mle)
	}
	if combined >= mle {
		t.Fatalf("MinHash+scramble rate %v not strictly below MLE rate %v — paper ordering violated", combined, mle)
	}
	t.Logf("inference rates on replayed taps: MLE %.2f%%, MinHash+scramble %.2f%%", mle*100, combined*100)

	// The streaming path must agree with the materialized one: run the
	// same attack straight off the .fdt source for the auxiliary side.
	c := cfg
	c.Leaked = attack.SampleLeaked(encMLE.Backup, encMLE.Truth, leakRate, 42)
	direct, err := attack.NewLocality(c).Run(attack.BackupSource(encMLE.Backup), taps[0], attack.Params{Shards: 8, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := direct.InferenceRate(encMLE.Truth); got != mle {
		t.Fatalf("attack over the streaming .fdt source scored %v, materialized scored %v", got, mle)
	}
}

// TestTapObserverForwarding checks a caller-supplied observer sees the
// same stream the trace log commits, and that a memory repository taps
// in memory.
func TestTapObserverForwarding(t *testing.T) {
	var seen []ChunkRef
	obs := observerFunc(func(refs []trace.ChunkRef) error {
		seen = append(seen, refs...)
		return nil
	})
	repo, err := CreateRepository("", WithUploadObserver(obs))
	if err != nil {
		t.Fatal(err)
	}
	defer repo.Close()
	data := repoData(3, 512<<10)
	if _, err := repo.Backup(context.Background(), "one", bytes.NewReader(data)); err != nil {
		t.Fatal(err)
	}
	log := repo.TraceLog()
	if log == nil {
		t.Fatal("memory repository has no trace log")
	}
	taps := log.Backups()
	if len(taps) != 1 {
		t.Fatalf("%d taps, want 1", len(taps))
	}
	b, err := taps[0].Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Chunks) != len(seen) {
		t.Fatalf("observer saw %d chunks, trace log committed %d", len(seen), len(b.Chunks))
	}
	for i := range seen {
		if seen[i] != b.Chunks[i] {
			t.Fatalf("chunk %d: observer saw %v, log committed %v", i, seen[i], b.Chunks[i])
		}
	}
}

// TestTapFailedBackupLeavesNoTrace checks an aborted backup commits no
// trace.
func TestTapFailedBackupLeavesNoTrace(t *testing.T) {
	repo, err := CreateRepository("", WithUploadObserver(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer repo.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := repo.Backup(ctx, "doomed", bytes.NewReader(repoData(4, 1<<20))); err == nil {
		t.Fatal("cancelled backup must fail")
	}
	if got := len(repo.TraceLog().Backups()); got != 0 {
		t.Fatalf("failed backup committed %d traces, want 0", got)
	}
	// A successful retry taps normally.
	if _, err := repo.Backup(context.Background(), "ok", bytes.NewReader(repoData(4, 1<<20))); err != nil {
		t.Fatal(err)
	}
	if got := len(repo.TraceLog().Backups()); got != 1 {
		t.Fatalf("%d traces after successful backup, want 1", got)
	}
}

// observerFunc adapts a function to UploadObserver.
type observerFunc func(refs []trace.ChunkRef) error

func (f observerFunc) ObserveUpload(refs []trace.ChunkRef) error { return f(refs) }
