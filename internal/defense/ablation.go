package defense

import (
	"fmt"

	"freqdedup/internal/attack"
	"freqdedup/internal/fphash"
	"freqdedup/internal/segment"
	"freqdedup/internal/trace"
)

// Ablation schemes beyond the paper's evaluated set. The paper evaluates
// MinHash-only and MinHash+scrambling; these variants isolate the
// remaining components:
//
//   - SchemeScrambleOnly: per-chunk deterministic MLE keys (frequency
//     distribution fully preserved — every chunk deduplicates exactly) but
//     per-segment scrambled upload order. Separates how much of the
//     combined scheme's protection comes from order destruction alone.
//   - SchemeRCE: random convergent encryption (Bellare et al. [13],
//     discussed in Section 8): chunk bodies are encrypted under fresh
//     random keys, but deduplication requires a deterministic tag per
//     chunk, and the adversary observes the tags. The observable stream is
//     therefore exactly as informative as baseline MLE — RCE does not stop
//     frequency analysis, which is the paper's argument for why
//     randomized-body MLE variants do not help.
const (
	// SchemeScrambleOnly applies scrambling with per-chunk MLE keys.
	SchemeScrambleOnly Scheme = iota + 100
	// SchemeRCE models random convergent encryption's observable tags.
	SchemeRCE
)

// rceNamespace separates RCE tag fingerprints from MLE ciphertext
// fingerprints, so cross-scheme streams never collide by construction.
var rceNamespace = fphash.FromUint64(0x5245435f54414753) // "RCE_TAGS"

// EncryptScrambleOnly simulates scrambling without MinHash encryption:
// chunks keep the baseline MLE one-to-one mapping (the ciphertext
// frequency distribution equals the plaintext one), but the upload order
// is scrambled within each segment.
func EncryptScrambleOnly(b *trace.Backup, opt Options) (Encrypted, error) {
	segs, err := segment.Split(b.Chunks, opt.Segments)
	if err != nil {
		return Encrypted{}, fmt.Errorf("defense: segment: %w", err)
	}
	rng := opt.rng()
	out := &trace.Backup{Label: b.Label, Chunks: make([]trace.ChunkRef, 0, len(b.Chunks))}
	truth := make(attack.GroundTruth, len(b.Chunks))
	recipe := make([]trace.ChunkRef, 0, len(b.Chunks))
	cache := make(map[fphash.Fingerprint]fphash.Fingerprint)
	cfpOf := func(pfp fphash.Fingerprint) fphash.Fingerprint {
		cfp, ok := cache[pfp]
		if !ok {
			cfp = deriveCipherFP(fphash.Zero, pfp)
			cache[pfp] = cfp
		}
		return cfp
	}
	for _, s := range segs {
		orig := b.Chunks[s.Start:s.End]
		for _, c := range scramble(orig, rng) {
			cfp := cfpOf(c.FP)
			out.Chunks = append(out.Chunks, trace.ChunkRef{FP: cfp, Size: c.Size})
			truth[cfp] = c.FP
		}
		for _, c := range orig {
			recipe = append(recipe, trace.ChunkRef{FP: cfpOf(c.FP), Size: c.Size})
		}
	}
	return Encrypted{Backup: out, Truth: truth, RecipeOrder: recipe}, nil
}

// EncryptRCE simulates the adversary's view of random convergent
// encryption: per-chunk ciphertext bodies are randomized, but duplicate
// detection exposes one deterministic tag per unique chunk, in logical
// order. Frequencies, neighbor structure, and sizes are all preserved —
// the stream is attack-equivalent to baseline MLE.
func EncryptRCE(b *trace.Backup) Encrypted {
	out := &trace.Backup{Label: b.Label, Chunks: make([]trace.ChunkRef, len(b.Chunks))}
	truth := make(attack.GroundTruth, len(b.Chunks))
	cache := make(map[fphash.Fingerprint]fphash.Fingerprint, len(b.Chunks))
	for i, c := range b.Chunks {
		tag, ok := cache[c.FP]
		if !ok {
			tag = deriveCipherFP(rceNamespace, c.FP)
			cache[c.FP] = tag
		}
		out.Chunks[i] = trace.ChunkRef{FP: tag, Size: c.Size}
		truth[tag] = c.FP
	}
	return Encrypted{Backup: out, Truth: truth, RecipeOrder: out.Chunks}
}
