// Command ddfsbench reproduces the metadata-access-overhead experiment of
// Section 7.4 (Figures 13 and 14): it replays the FSL dataset, encrypted
// under baseline MLE and under the combined MinHash+scrambling scheme,
// through the DDFS-like deduplication prototype and reports the on-disk
// metadata access volume per backup.
//
// It also measures the byte-level backup pipeline itself: -pipeline
// replays a pseudo-random stream through the sharded store with the
// parallel encrypt+fingerprint client and reports throughput, so the
// effect of -shards and -workers is visible on real hardware. -chunker
// isolates the streaming ingest stage (content-defined chunking with
// pooled buffers and deferred fingerprinting), the serial stage that
// bounds backup throughput. -restore drives the repository round trip
// end to end: CreateRepository under -dir, Backup (sealed recipe into the
// crash-safe snapshot catalog), close, OpenRepository (catalog replayed,
// refcounts restored), Verify, and a parallel-pipeline Restore with
// SHA-256 verification. Ctrl-C cancels the in-flight stage cleanly
// through the context plumbing.
//
// -attack benchmarks the streaming attack engine: sharded two-pass
// counting and the full locality attack over a generated trace, so the
// effect of table shards and counting workers is visible on real
// hardware.
//
//	ddfsbench            # both cache regimes
//	ddfsbench -cache 0.25
//	ddfsbench -pipeline -mb 64 -shards 16 -workers 0
//	ddfsbench -chunker -mb 256
//	ddfsbench -chunker -gear -mb 256          # gear-hash chunk format
//	ddfsbench -chunker -gear -chunkworkers 4  # multi-stream gear scan
//	ddfsbench -restore -mb 64 -workers 0 -cachecontainers 64
//	ddfsbench -restore -dir /tmp/ddfs-store   # keep the repository around
//	ddfsbench -attack -mb 256 -shards 16 -workers 0
//	ddfsbench -attack -workload database -mb 64
//	                     # attack-engine benchmark on a registered workload
//	ddfsbench -faults -rounds 8
//	                     # crash-consistency soak: exhaustive crash-point
//	                     # sweeps across 8 scenario seeds
//	ddfsbench -server -clients 4 -mb 16
//	                     # multi-tenant server load: N loopback network
//	                     # clients against one in-process defendd
//	ddfsbench -index -chunks 1000000
//	                     # fingerprint-index comparison: cold-open latency,
//	                     # lookup throughput, and resident heap for the
//	                     # in-memory map vs the persistent on-disk index
package main

import (
	"bytes"
	"context"
	"crypto/sha256"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"time"

	"freqdedup"
	"freqdedup/internal/attack"
	"freqdedup/internal/chunker"
	"freqdedup/internal/container"
	"freqdedup/internal/dedup"
	"freqdedup/internal/defense"
	"freqdedup/internal/eval"
	"freqdedup/internal/fphash"
	"freqdedup/internal/trace"
	"freqdedup/internal/workload"
)

func main() {
	cacheFrac := flag.Float64("cache", 0,
		"fingerprint cache size as a fraction of total fingerprint metadata (0 = run both paper regimes)")
	pipeline := flag.Bool("pipeline", false,
		"benchmark the byte-level backup pipeline instead of the metadata experiments")
	chunkerOnly := flag.Bool("chunker", false,
		"benchmark the streaming content-defined chunker alone (the ingest stage)")
	gear := flag.Bool("gear", false,
		"use the gear-hash chunk format in -chunker mode (NOT cut-compatible with the default Rabin format)")
	chunkWorkers := flag.Int("chunkworkers", 0,
		"multi-stream chunking workers for -chunker -gear (0 or 1 = serial scan)")
	restoreMode := flag.Bool("restore", false,
		"benchmark backup-to-disk, reopen, and parallel restore end to end")
	attackMode := flag.Bool("attack", false,
		"benchmark the streaming attack engine's sharded parallel counting")
	faultsMode := flag.Bool("faults", false,
		"soak the crash-point explorer: exhaustive crash sweeps across -rounds scenario seeds")
	serverMode := flag.Bool("server", false,
		"benchmark the multi-tenant server: -clients loopback network clients against one shared repository")
	indexMode := flag.Bool("index", false,
		"benchmark the fingerprint index: cold-open latency, lookup throughput, and resident heap for the in-memory map vs the persistent bloom-fronted index")
	chunks := flag.Int("chunks", 200_000, "chunk count for -index mode")
	rounds := flag.Int("rounds", 4, "scenario seeds to sweep in -faults mode")
	dir := flag.String("dir", "",
		"store directory for -restore (empty = temporary directory, removed afterwards)")
	streamMB := flag.Int("mb", 64, "pipeline stream size in MiB")
	shards := flag.Int("shards", dedup.DefaultShards, "store shard count (1 = serial engine layout)")
	workers := flag.Int("workers", 0, "encrypt/restore workers per client (0 = GOMAXPROCS)")
	clients := flag.Int("clients", 1, "concurrent backup clients sharing one store")
	cacheContainers := flag.Int("cachecontainers", 64,
		"restore container-cache capacity in containers (0 = uncached)")
	workloadName := flag.String("workload", "",
		"registered workload for the -attack trace (empty = classic synthetic; see tracegen -list)")
	flag.Parse()

	if *chunkerOnly {
		if err := runChunker(*streamMB, *gear, *chunkWorkers); err != nil {
			fatal(err)
		}
		return
	}
	if *restoreMode {
		if err := runRestore(*streamMB, *shards, *workers, *cacheContainers, *dir); err != nil {
			fatal(err)
		}
		return
	}
	if *attackMode {
		if err := runAttack(*streamMB, *shards, *workers, *workloadName); err != nil {
			fatal(err)
		}
		return
	}
	if *faultsMode {
		if err := runFaults(*rounds); err != nil {
			fatal(err)
		}
		return
	}
	if *serverMode {
		if err := runServer(*streamMB, *workers, *clients, *dir); err != nil {
			fatal(err)
		}
		return
	}
	if *indexMode {
		if err := runIndex(*chunks, *shards, *dir); err != nil {
			fatal(err)
		}
		return
	}
	if *pipeline {
		if err := runPipeline(*streamMB, *shards, *workers, *clients); err != nil {
			fatal(err)
		}
		return
	}

	ds := eval.Generate()
	if *cacheFrac > 0 {
		figs, err := eval.MetadataWithCacheFrac(ds, *cacheFrac)
		if err != nil {
			fatal(err)
		}
		for i := range figs {
			figs[i].Render(os.Stdout)
		}
		return
	}
	f13, err := eval.Fig13Metadata512(ds)
	if err != nil {
		fatal(err)
	}
	f14, err := eval.Fig14Metadata4G(ds)
	if err != nil {
		fatal(err)
	}
	for i := range f13 {
		f13[i].Render(os.Stdout)
	}
	for i := range f14 {
		f14[i].Render(os.Stdout)
	}
	restore, err := eval.RestoreLocality(ds)
	if err != nil {
		fatal(err)
	}
	restore.Render(os.Stdout)
}

// runPipeline drives the byte-level engine: each client backs up its own
// pseudo-random stream (no cross-client dedup, so every chunk takes the
// full encrypt+pack path) into one shared sharded store, all clients
// concurrently. It prints aggregate throughput and store statistics.
func runPipeline(streamMB, shards, workers, clients int) error {
	if streamMB <= 0 || clients <= 0 {
		return fmt.Errorf("stream size and client count must be positive")
	}
	if shards < 0 || shards > 256 {
		return fmt.Errorf("-shards must be in [1, 256] (0 selects the default), got %d", shards)
	}
	if workers < 0 {
		return fmt.Errorf("-workers must be non-negative (0 selects GOMAXPROCS), got %d", workers)
	}
	store := dedup.NewStoreWithShards(0, shards)
	streams := make([][]byte, clients)
	for i := range streams {
		streams[i] = make([]byte, streamMB<<20)
		rng := rand.New(rand.NewSource(int64(1 + i)))
		for j := range streams[i] {
			streams[i][j] = byte(rng.Intn(256))
		}
	}
	fmt.Printf("pipeline: %d client(s) x %d MiB, %d shard(s), %d worker(s), GOMAXPROCS=%d\n",
		clients, streamMB, store.ShardCount(), workers, runtime.GOMAXPROCS(0))

	errs := make(chan error, clients)
	start := time.Now()
	for i := 0; i < clients; i++ {
		go func(i int) {
			client, err := dedup.NewClient(store, dedup.Config{
				Workers:      workers,
				ScrambleSeed: int64(1 + i),
			})
			if err != nil {
				errs <- err
				return
			}
			_, err = client.Backup(bytes.NewReader(streams[i]))
			errs <- err
		}(i)
	}
	for i := 0; i < clients; i++ {
		if err := <-errs; err != nil {
			return err
		}
	}
	elapsed := time.Since(start)

	st := store.Stats()
	mb := float64(st.LogicalBytes) / (1 << 20)
	fmt.Printf("backed up %.0f MiB in %v: %.1f MB/s\n", mb, elapsed.Round(time.Millisecond),
		mb/elapsed.Seconds())
	fmt.Printf("store: %d logical chunks, %d unique, %d container(s), saving %.1f%%\n",
		st.LogicalChunks, st.UniqueChunks, store.ContainerCount(), st.Saving()*100)
	return nil
}

// countingHashWriter hashes and counts everything written, so a restore
// can be verified without holding the output stream in memory.
type countingHashWriter struct {
	h interface {
		io.Writer
		Sum([]byte) []byte
	}
	n int64
}

func (w *countingHashWriter) Write(p []byte) (int, error) {
	w.n += int64(len(p))
	return w.h.Write(p)
}

// runRestore drives the full repository loop: back a pseudo-random
// stream up through Repository.Backup (snapshot sealed into the durable
// catalog), close, OpenRepository (catalog replayed, reference counts
// restored), Verify the store, and Restore through the parallel container
// pipeline, checking the restored bytes hash-identical to the input.
// Ctrl-C cancels whichever stage is in flight via its context.
func runRestore(streamMB, shards, workers, cacheContainers int, dir string) error {
	if streamMB <= 0 {
		return fmt.Errorf("stream size must be positive")
	}
	if shards < 0 || shards > 256 {
		return fmt.Errorf("-shards must be in [1, 256] (0 selects the default), got %d", shards)
	}
	if workers < 0 || cacheContainers < 0 {
		return fmt.Errorf("-workers and -cachecontainers must be non-negative")
	}
	if dir == "" {
		tmp, err := os.MkdirTemp("", "ddfsbench-store-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	data := make([]byte, streamMB<<20)
	rng := rand.New(rand.NewSource(1))
	for i := range data {
		data[i] = byte(rng.Intn(256))
	}
	wantSum := sha256.Sum256(data)
	mb := float64(len(data)) / (1 << 20)

	repo, err := freqdedup.CreateRepository(dir,
		freqdedup.WithShards(shards),
		freqdedup.WithWorkers(workers),
		freqdedup.WithRestoreCache(cacheContainers),
	)
	if err != nil {
		return err
	}
	fmt.Printf("restore: %d MiB via %s, %d shard(s), %d worker(s), cache %d container(s), GOMAXPROCS=%d\n",
		streamMB, dir, shards, workers, cacheContainers, runtime.GOMAXPROCS(0))

	start := time.Now()
	snap, err := repo.Backup(ctx, "bench", bytes.NewReader(data))
	if err != nil {
		return err
	}
	if err := repo.Close(); err != nil {
		return err
	}
	backupTime := time.Since(start)
	fmt.Printf("backup+seal: %v (%.1f MB/s to disk, %d chunks, snapshot durable in catalog)\n",
		backupTime.Round(time.Millisecond), mb/backupTime.Seconds(), snap.Chunks)

	start = time.Now()
	reopened, err := freqdedup.OpenRepository(dir,
		freqdedup.WithWorkers(workers),
		freqdedup.WithRestoreCache(cacheContainers),
	)
	if err != nil {
		return err
	}
	defer reopened.Close()
	st := reopened.Stats()
	fmt.Printf("reopen: %v (%d snapshot(s), %d unique chunks reindexed)\n",
		time.Since(start).Round(time.Millisecond), len(reopened.Snapshots()), st.UniqueChunks)

	start = time.Now()
	if err := reopened.Verify(ctx); err != nil {
		return err
	}
	fmt.Printf("verify: %v (every chunk checksummed and fingerprint-checked)\n",
		time.Since(start).Round(time.Millisecond))

	out := &countingHashWriter{h: sha256.New()}
	start = time.Now()
	if err := reopened.Restore(ctx, "bench", out); err != nil {
		return err
	}
	restoreTime := time.Since(start)
	if out.n != int64(len(data)) || !bytes.Equal(out.h.Sum(nil), wantSum[:]) {
		return fmt.Errorf("restore verification failed: %d bytes restored of %d", out.n, len(data))
	}
	fmt.Printf("restore: %v: %.1f MB/s (verified bit-for-bit)\n",
		restoreTime.Round(time.Millisecond), mb/restoreTime.Seconds())
	return nil
}

// runAttack benchmarks the streaming attack engine: it generates a trace
// pair scaled to -mb logical megabytes (the classic synthetic chain, or
// any registered workload via -workload), encrypts the target under
// baseline MLE, and times first the two-pass sharded counting alone (via
// the basic attack, which is counting plus one rank) and then the full
// locality attack, reporting logical-byte throughput. -shards and
// -workers select the engine's parallelism; results are bit-identical at
// every setting.
func runAttack(streamMB, shards, workers int, workloadName string) error {
	if streamMB <= 0 {
		return fmt.Errorf("stream size must be positive")
	}
	var d *trace.Dataset
	if workloadName != "" {
		var err error
		d, err = workload.Generate(workloadName, workload.Config{
			Backups:    3,
			TotalBytes: streamMB << 20,
		})
		if err != nil {
			return err
		}
	} else {
		p := trace.DefaultSyntheticParams()
		p.InitialBytes = streamMB << 20
		p.NewDataBytes = (streamMB << 20) / 100
		p.Snapshots = 2
		d = trace.GenerateSynthetic(p)
	}
	aux, target := d.Backups[0], d.Backups[len(d.Backups)-1]
	enc := defense.EncryptMLE(target)
	params := attack.Params{Shards: shards, Workers: workers}
	logicalMB := float64(target.LogicalSize()+aux.LogicalSize()) / (1 << 20)
	fmt.Printf("attack: %.0f MiB of trace (%d + %d chunks, %d unique targets), shards=%d, workers=%d, GOMAXPROCS=%d\n",
		logicalMB, len(target.Chunks), len(aux.Chunks), enc.Backup.UniqueCount(),
		shards, workers, runtime.GOMAXPROCS(0))

	start := time.Now()
	basic, err := attack.NewBasic(attack.Config{}).Run(attack.BackupSource(enc.Backup), attack.BackupSource(aux), params)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	fmt.Printf("counting (basic attack): %v, %.1f MB/s, %d pairs, rate %.2f%%\n",
		elapsed.Round(time.Millisecond), logicalMB/elapsed.Seconds(),
		len(basic.Pairs), basic.InferenceRate(enc.Truth)*100)

	cfg := attack.DefaultConfig()
	start = time.Now()
	loc, err := attack.NewLocality(cfg).Run(attack.BackupSource(enc.Backup), attack.BackupSource(aux), params)
	if err != nil {
		return err
	}
	elapsed = time.Since(start)
	fmt.Printf("locality attack: %v, %.1f MB/s, %d pairs, rate %.2f%% (%d iterations, peak queue %d)\n",
		elapsed.Round(time.Millisecond), logicalMB/elapsed.Seconds(),
		len(loc.Pairs), loc.InferenceRate(enc.Truth)*100,
		loc.Stats.Iterations, loc.Stats.PeakQueue)
	return nil
}

// runFaults is the crash-consistency soak: for each scenario seed it runs
// the exhaustive crash-point sweep — crash the scripted
// backup/delete/GC/backup scenario at EVERY mutating filesystem
// operation, reopen the durable image, and check the full recovery
// invariant set — and reports throughput in crash points per second. Any
// failure is a real durability bug: it prints the scenario seed and crash
// op needed to replay it deterministically, and exits non-zero.
func runFaults(rounds int) error {
	if rounds <= 0 {
		return fmt.Errorf("-rounds must be positive, got %d", rounds)
	}
	fmt.Printf("faults: exhaustive crash sweep x %d scenario seed(s), GOMAXPROCS=%d\n",
		rounds, runtime.GOMAXPROCS(0))
	var points, failures int
	start := time.Now()
	for seed := int64(1); seed <= int64(rounds); seed++ {
		roundStart := time.Now()
		res, err := freqdedup.ExploreCrashPoints(freqdedup.CrashSweepOptions{
			Scenario: freqdedup.CrashScenario{Seed: seed},
		})
		if err != nil {
			return fmt.Errorf("seed %d: %w", seed, err)
		}
		points += len(res.PointsTested)
		failures += len(res.Failures)
		for _, f := range res.Failures {
			fmt.Printf("  FAIL seed %d crash op %d/%d: %v\n", seed, f.Op, res.TotalOps, f.Err)
		}
		fmt.Printf("  seed %d: %d crash points (%d sync points) in %v\n",
			seed, len(res.PointsTested), len(res.SyncPoints),
			time.Since(roundStart).Round(time.Millisecond))
	}
	elapsed := time.Since(start)
	fmt.Printf("swept %d crash points in %v: %.1f points/s, %d failure(s)\n",
		points, elapsed.Round(time.Millisecond), float64(points)/elapsed.Seconds(), failures)
	if failures > 0 {
		return fmt.Errorf("%d crash point(s) violated recovery invariants", failures)
	}
	return nil
}

// runServer drives the multi-tenant network path end to end: one
// in-process repository server on a loopback listener, -clients network
// clients each dialing as its own tenant and backing up -mb MiB. Half of
// every stream is shared across tenants and half is private, so the
// negotiation round has real cross-tenant dedup to find; the report
// separates wire throughput from the store's dedup ratio.
func runServer(streamMB, workers, clients int, dir string) error {
	if streamMB <= 0 || clients <= 0 {
		return fmt.Errorf("stream size and client count must be positive")
	}
	if dir == "" {
		tmp, err := os.MkdirTemp("", "ddfsbench-server-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	// Half shared across every tenant, half private per tenant: the
	// shared half uploads once and then dedups over the wire (misses
	// only), so the dedup ratio approaches 2 as -clients grows.
	shared := make([]byte, (streamMB<<20)/2)
	rng := rand.New(rand.NewSource(9000))
	for i := range shared {
		shared[i] = byte(rng.Intn(256))
	}
	streams := make([][]byte, clients)
	for i := range streams {
		streams[i] = make([]byte, 0, streamMB<<20)
		streams[i] = append(streams[i], shared...)
		private := make([]byte, (streamMB<<20)-len(shared))
		prng := rand.New(rand.NewSource(int64(9001 + i)))
		for j := range private {
			private[j] = byte(prng.Intn(256))
		}
		streams[i] = append(streams[i], private...)
	}

	repo, err := freqdedup.CreateRepository(dir)
	if err != nil {
		return err
	}
	defer repo.Close()
	srv, err := freqdedup.NewRepositoryServer(repo, freqdedup.ServerConfig{})
	if err != nil {
		return err
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	addr := ln.Addr().String()
	fmt.Printf("server: %d tenant(s) x %d MiB over loopback %s, %d worker(s)/client, GOMAXPROCS=%d\n",
		clients, streamMB, addr, workers, runtime.GOMAXPROCS(0))

	errs := make(chan error, clients)
	start := time.Now()
	for i := 0; i < clients; i++ {
		go func(i int) {
			c, err := freqdedup.DialServer(addr, freqdedup.RemoteClientConfig{
				Tenant:  fmt.Sprintf("t%d", i),
				Workers: workers,
			})
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			_, err = c.Backup(ctx, "bench", bytes.NewReader(streams[i]))
			errs <- err
		}(i)
	}
	for i := 0; i < clients; i++ {
		if err := <-errs; err != nil {
			return err
		}
	}
	elapsed := time.Since(start)

	st := repo.Stats()
	logicalMB := float64(st.LogicalBytes) / (1 << 20)
	storedMB := float64(st.PhysicalBytes) / (1 << 20)
	dedupRatio := st.Ratio()
	fmt.Printf("backed up %.0f MiB in %v: %.1f MB/s aggregate over the wire\n",
		logicalMB, elapsed.Round(time.Millisecond), logicalMB/elapsed.Seconds())
	fmt.Printf("store: %d logical chunks, %d unique, %.0f MiB stored, dedup ratio %.2fx\n",
		st.LogicalChunks, st.UniqueChunks, storedMB, dedupRatio)

	usage, err := repo.TenantStats()
	if err != nil {
		return err
	}
	for _, u := range usage {
		fmt.Printf("tenant %-4s: %3d MiB logical, %3d MiB stored (%d exclusive / %d shared chunks)\n",
			u.Tenant, u.LogicalBytes>>20, u.StoredBytes>>20, u.ExclusiveChunks, u.SharedChunks)
	}
	if err := srv.Close(); err != nil {
		return err
	}
	if err := <-serveDone; err != nil {
		return err
	}
	return nil
}

// runIndex compares the two fingerprint-index engines head to head on a
// store of -chunks synthetic fixed-size chunks: cold-open latency (the
// map rescans every container's metadata; the persistent index reads run
// footers, bloom filters, and only the unflushed container tail), lookup
// throughput for present and absent fingerprints, and the resident heap
// of the open store. The persistent run also prints the lookup-path
// decomposition counters (bloom negatives, memtable hits, cache hits,
// disk probes).
func runIndex(chunks, shards int, dir string) error {
	if chunks <= 0 {
		return fmt.Errorf("-chunks must be positive, got %d", chunks)
	}
	if shards < 0 || shards > 256 {
		return fmt.Errorf("-shards must be in [1, 256] (0 selects the default), got %d", shards)
	}
	if shards == 0 {
		shards = dedup.DefaultShards
	}
	if dir == "" {
		tmp, err := os.MkdirTemp("", "ddfsbench-index-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}
	fmt.Printf("index: %d chunks, %d shard(s), GOMAXPROCS=%d\n", chunks, shards, runtime.GOMAXPROCS(0))

	// Mix is a bijective finalizer over the counter, so fpAt(1..chunks)
	// is the stored set and any counter past chunks is a guaranteed miss.
	fpAt := func(i int) fphash.Fingerprint {
		return fphash.FromUint64(fphash.FromUint64(uint64(i) + 1).Mix(1))
	}
	heapMB := func() float64 {
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return float64(ms.HeapInuse) / (1 << 20)
	}

	for _, mode := range []string{"map", "fpindex"} {
		sub := filepath.Join(dir, mode)
		opts := dedup.StoreOptions{}
		if mode == "fpindex" {
			opts.Index = dedup.IndexPersistent
			opts.IndexDir = filepath.Join(sub, "fpindex")
		}

		// Populate through the batch write path and flush everything.
		backend, err := container.CreateFileBackend(filepath.Join(sub, "store"), shards, container.DefaultBytes)
		if err != nil {
			return err
		}
		store, err := dedup.NewStoreWithOptions(backend, opts)
		if err != nil {
			return err
		}
		const perBatch = 512
		data := make([]byte, 64)
		rand.New(rand.NewSource(1)).Read(data)
		batch := make([]dedup.PutChunk, 0, perBatch)
		start := time.Now()
		for i := 0; i < chunks; i++ {
			batch = append(batch, dedup.PutChunk{FP: fpAt(i), Data: data})
			if len(batch) == perBatch || i == chunks-1 {
				if _, err := store.PutBatch(batch); err != nil {
					return err
				}
				batch = batch[:0]
			}
		}
		if err := store.Close(); err != nil {
			return err
		}
		fmt.Printf("%-8s populate: %d chunks in %v\n", mode, chunks, time.Since(start).Round(time.Millisecond))

		// Cold open.
		base := heapMB()
		start = time.Now()
		backend, err = container.OpenFileBackend(filepath.Join(sub, "store"))
		if err != nil {
			return err
		}
		store, err = dedup.NewStoreWithOptions(backend, opts)
		if err != nil {
			return err
		}
		openTime := time.Since(start)
		if got := store.UniqueChunks(); got != chunks {
			return fmt.Errorf("%s: reopened store has %d chunks, want %d", mode, got, chunks)
		}
		fmt.Printf("%-8s open: %v cold (%.1f MB heap while open, %.1f before)\n",
			mode, openTime.Round(time.Microsecond), heapMB(), base)

		// Lookup throughput: probes alternating between stored and absent
		// fingerprints, so both the positive path (memtable/cache/run) and
		// the negative path (bloom) are on the clock.
		probes := 2 * chunks
		if probes > 2_000_000 {
			probes = 2_000_000
		}
		start = time.Now()
		for i := 0; i < probes/2; i++ {
			if !store.Contains(fpAt(i % chunks)) {
				return fmt.Errorf("%s: stored fingerprint missing", mode)
			}
			if store.Contains(fpAt(chunks + 1 + i)) {
				return fmt.Errorf("%s: absent fingerprint found", mode)
			}
		}
		elapsed := time.Since(start)
		fmt.Printf("%-8s lookup: %d probes in %v: %.2f Mlookups/s (%v/probe)\n",
			mode, probes, elapsed.Round(time.Millisecond),
			float64(probes)/elapsed.Seconds()/1e6, (elapsed / time.Duration(probes)).Round(time.Nanosecond))
		if st := store.Stats(); mode == "fpindex" {
			fmt.Printf("%-8s counters: %d bloom negatives, %d memtable hits, %d cache hits, %d disk probes\n",
				mode, st.IndexBloomNegative, st.IndexMemtableHits, st.IndexBlockCacheHits, st.IndexDiskProbes)
		}
		if err := store.Close(); err != nil {
			return err
		}
	}
	return nil
}

// runChunker streams a pseudo-random buffer through the content-defined
// chunker in its backup-pipeline configuration (pooled buffers released
// after each chunk, plaintext fingerprinting deferred) and reports the
// ingest throughput and chunk-size distribution. -gear switches to the
// gear-hash format; -chunkworkers > 1 adds multi-stream scanning (gear
// only, bit-identical output to the serial gear chunker).
func runChunker(streamMB int, gear bool, chunkWorkers int) error {
	if streamMB <= 0 {
		return fmt.Errorf("stream size must be positive")
	}
	data := make([]byte, streamMB<<20)
	rng := rand.New(rand.NewSource(1))
	for i := range data {
		data[i] = byte(rng.Intn(256))
	}
	params := chunker.DefaultParams()
	params.DeferFingerprint = true
	var (
		cdc  chunker.Chunker
		err  error
		mode = "rabin"
	)
	switch {
	case gear && chunkWorkers > 1:
		params.Algorithm = chunker.AlgoGear
		cdc, err = chunker.NewMultiGear(bytes.NewReader(data), params, chunkWorkers)
		mode = fmt.Sprintf("gear x%d streams", chunkWorkers)
	case gear:
		params.Algorithm = chunker.AlgoGear
		cdc, err = chunker.NewGear(bytes.NewReader(data), params)
		mode = "gear"
	case chunkWorkers > 1:
		return fmt.Errorf("-chunkworkers requires -gear (multi-stream chunking is gear-only)")
	default:
		cdc, err = chunker.NewContentDefined(bytes.NewReader(data), params)
	}
	if err != nil {
		return err
	}
	var (
		chunks   int
		minSize  = params.Max + 1
		maxSize  int
		consumed int64
	)
	start := time.Now()
	for {
		ch, err := cdc.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		chunks++
		consumed += int64(ch.Size())
		if ch.Size() < minSize {
			minSize = ch.Size()
		}
		if ch.Size() > maxSize {
			maxSize = ch.Size()
		}
		ch.Release()
	}
	if c, ok := cdc.(interface{ Close() error }); ok {
		if err := c.Close(); err != nil {
			return err
		}
	}
	elapsed := time.Since(start)
	mb := float64(consumed) / (1 << 20)
	fmt.Printf("chunker (%s): %.0f MiB in %v: %.1f MB/s\n", mode, mb, elapsed.Round(time.Millisecond),
		mb/elapsed.Seconds())
	fmt.Printf("chunks: %d (avg %.0f B, min %d, max %d)\n",
		chunks, float64(consumed)/float64(chunks), minSize, maxSize)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ddfsbench:", err)
	os.Exit(1)
}
