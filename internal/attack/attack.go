package attack

import (
	"fmt"
	"math/rand"
	"runtime"
	"slices"

	"freqdedup/internal/fphash"
	"freqdedup/internal/trace"
)

// Pair is one inferred ciphertext-plaintext chunk pair (C, M).
type Pair struct {
	C fphash.Fingerprint // ciphertext chunk of the latest backup
	M fphash.Fingerprint // inferred original plaintext chunk
}

// GroundTruth maps each ciphertext chunk fingerprint to the fingerprint
// of the plaintext chunk it encrypts. Trace-level encryption simulations
// (package defense) produce it alongside the ciphertext stream.
type GroundTruth map[fphash.Fingerprint]fphash.Fingerprint

// Mode selects how an attack uses auxiliary knowledge (Section 3.3).
type Mode int

const (
	// CiphertextOnly models an adversary with only the ciphertext stream
	// and the auxiliary prior backup: the locality attacks seed their
	// inferred set by frequency analysis.
	CiphertextOnly Mode = iota + 1
	// KnownPlaintext models an adversary that additionally knows some
	// leaked ciphertext-plaintext pairs of the latest backup.
	KnownPlaintext
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case CiphertextOnly:
		return "ciphertext-only"
	case KnownPlaintext:
		return "known-plaintext"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Config parameterizes an attack. The zero value means the basic attack's
// needs (no parameters); the locality attacks read every field.
type Config struct {
	// U is the number of seed pairs taken from whole-stream frequency
	// analysis in ciphertext-only mode (paper default 1).
	U int
	// V is the number of pairs returned by each per-neighbor frequency
	// analysis (paper default 15).
	V int
	// W bounds the size of the inferred FIFO set G (paper default 200,000;
	// scale with dataset size). W <= 0 means unbounded.
	W int
	// Mode selects the initialization (default CiphertextOnly). The basic
	// attack is classical frequency analysis either way: it uses no leaked
	// pairs (the paper's Algorithm 1 has no known-plaintext variant).
	Mode Mode
	// Leaked supplies the known ciphertext-plaintext pairs for
	// KnownPlaintext mode. Pairs whose chunks do not appear in both
	// streams are ignored, as in the paper.
	Leaked []Pair
	// SizeAware enables the advanced variant (Algorithm 3): every
	// frequency analysis is refined by chunk-size classification.
	SizeAware bool
	// ArbitraryTies makes the per-neighbor frequency analyses break ties
	// arbitrarily (by fingerprint) instead of by first stream position
	// (the tie-breaking ablation; the default is the stronger attack).
	ArbitraryTies bool
}

// DefaultConfig returns the paper's default locality parameters (u=1,
// v=15, w=200,000, ciphertext-only).
func DefaultConfig() Config {
	return Config{U: 1, V: 15, W: 200000, Mode: CiphertextOnly}
}

// Params sets the engine's parallelism: how many fingerprint-prefix
// shards the counting tables are split into and how many goroutines count
// them. Attack results are bit-identical at every setting — sharding and
// fan-out change wall-clock time and peak per-shard memory only.
type Params struct {
	// Shards is the fingerprint-prefix shard count in [1, 256]
	// (DefaultShards if zero).
	Shards int
	// Workers is the counting fan-out (GOMAXPROCS if zero, capped at
	// Shards; 1 counts inline with no goroutines).
	Workers int
}

// DefaultShards caps the table shard count chosen when Params.Shards is
// zero — the same default partitioning as the dedup store.
const DefaultShards = 16

func (p Params) withDefaults() (Params, error) {
	if p.Workers < 0 {
		return p, fmt.Errorf("attack: negative worker count %d", p.Workers)
	}
	if p.Workers == 0 {
		p.Workers = runtime.GOMAXPROCS(0)
	}
	if p.Shards == 0 {
		// Sharding exists to give counting workers disjoint ownership;
		// shards beyond a small multiple of the workers only cost table
		// memory (and map-allocation overhead on serial runs), so the
		// default scales with the fan-out. Results are identical at
		// every setting, so the choice is purely a performance default.
		p.Shards = 2 * p.Workers
		if p.Shards > DefaultShards {
			p.Shards = DefaultShards
		}
	}
	if p.Shards < 1 || p.Shards > 256 {
		return p, fmt.Errorf("attack: shard count %d out of range [1, 256]", p.Shards)
	}
	return p, nil
}

// Stats reports the internals of one attack run — the quantities behind
// the paper's Section 5.2 cost discussion.
type Stats struct {
	// Seeds is the number of pairs the inferred set was initialized with.
	Seeds int
	// Iterations is the number of pairs popped from G and processed.
	Iterations int
	// PeakQueue is the maximum number of pending pairs in G.
	PeakQueue int
	// DroppedByW is the number of inferred pairs not enqueued because G
	// was at its w bound (they still count as inferred).
	DroppedByW int
	// Inferred is the number of ciphertext-plaintext pairs returned.
	Inferred int
}

// Result is one attack run's output.
type Result struct {
	// Pairs are the inferred ciphertext-plaintext pairs, sorted by
	// ciphertext fingerprint. Every C fingerprint occurs in the target
	// stream.
	Pairs []Pair
	// Stats are the run's internals.
	Stats Stats
	// UniqueTarget is the number of distinct fingerprints in the target
	// (ciphertext) stream — the denominator of the inference rate,
	// computed during counting so scoring needs no second pass.
	UniqueTarget int
}

// InferenceRate computes the paper's severity metric: correctly inferred
// unique ciphertext chunks over total unique ciphertext chunks in the
// target stream. It equals the legacy core scoring because every inferred
// pair's ciphertext chunk occurs in the target stream by construction.
func (r Result) InferenceRate(truth GroundTruth) float64 {
	if r.UniqueTarget == 0 {
		return 0
	}
	correct := 0
	for _, p := range r.Pairs {
		if truth[p.C] == p.M {
			correct++
		}
	}
	return float64(correct) / float64(r.UniqueTarget)
}

// Attack is one inference attack against a tapped upload stream: c is the
// ciphertext stream of the latest (target) backup, m the plaintext stream
// of a prior backup (the auxiliary information). Implementations are
// stateless values; Run may be called concurrently with distinct sources.
type Attack interface {
	// Name identifies the attack ("basic", "locality", "advanced").
	Name() string
	// Run consumes both streams (each once per counting pass) and returns
	// the inferred pairs. Results are independent of p's parallelism.
	Run(c, m ChunkSource, p Params) (Result, error)
}

// NewBasic returns the basic attack (Algorithm 1): whole-stream frequency
// analysis, pairing chunks rank for rank. Only cfg.SizeAware is read
// (classical frequency analysis has no other parameters); leaked pairs
// are ignored in either mode.
func NewBasic(cfg Config) Attack { return basicAttack{cfg: cfg} }

// NewLocality returns the locality-based attack (Algorithm 2), or the
// advanced variant (Algorithm 3) when cfg.SizeAware is set.
func NewLocality(cfg Config) Attack { return localityAttack{cfg: cfg} }

// NewAdvanced returns the advanced locality-based attack (Algorithm 3):
// NewLocality with size-aware frequency analysis forced on.
func NewAdvanced(cfg Config) Attack {
	cfg.SizeAware = true
	return localityAttack{cfg: cfg}
}

// Suite returns the full attack matrix for one configuration: basic,
// locality, and advanced, all sharing cfg's mode and parameters — the
// loop the experiment drivers iterate.
func Suite(cfg Config) []Attack {
	basic := cfg
	basic.SizeAware = false
	loc := cfg
	loc.SizeAware = false
	return []Attack{NewBasic(basic), NewLocality(loc), NewAdvanced(cfg)}
}

type basicAttack struct{ cfg Config }

func (a basicAttack) Name() string { return "basic" }

func (a basicAttack) Run(c, m ChunkSource, p Params) (Result, error) {
	p, err := p.withDefaults()
	if err != nil {
		return Result{}, err
	}
	tc, tm, err := buildTablePair(c, m, p, false)
	if err != nil {
		return Result{}, err
	}
	pairs := freqAnalysis(tc.flatAll(), tm.flatAll(), 0, a.cfg.SizeAware, false)
	return Result{
		Pairs:        pairs,
		Stats:        Stats{Inferred: len(pairs)},
		UniqueTarget: tc.unique(),
	}, nil
}

type localityAttack struct{ cfg Config }

func (a localityAttack) Name() string {
	if a.cfg.SizeAware {
		return "advanced"
	}
	return "locality"
}

func (a localityAttack) Run(c, m ChunkSource, p Params) (Result, error) {
	p, err := p.withDefaults()
	if err != nil {
		return Result{}, err
	}
	cfg := a.cfg
	if cfg.Mode == 0 {
		cfg.Mode = CiphertextOnly
	}
	tc, tm, err := buildTablePair(c, m, p, true)
	if err != nil {
		return Result{}, err
	}

	// Initialize the inferred set G (FIFO queue) and the result set T.
	var g []Pair
	switch cfg.Mode {
	case KnownPlaintext:
		for _, pr := range cfg.Leaked {
			if !tc.has(pr.C) || !tm.has(pr.M) {
				continue
			}
			g = append(g, pr)
		}
	default:
		g = freqAnalysis(tc.flatAll(), tm.flatAll(), cfg.U, cfg.SizeAware, false)
	}

	stats := Stats{Seeds: len(g)}

	t := make(map[fphash.Fingerprint]fphash.Fingerprint, len(g))
	for _, pr := range g {
		if _, ok := t[pr.C]; !ok {
			t[pr.C] = pr.M
		}
	}

	// Main loop: pop a pair, infer through left and right neighbors. The
	// two flatten buffers are reused across all iterations.
	var ecBuf, emBuf []freqEntry
	for head := 0; head < len(g); head++ {
		cur := g[head]
		stats.Iterations++
		ecBuf = tc.lrow(cur.C).flatInto(ecBuf, tc)
		emBuf = tm.lrow(cur.M).flatInto(emBuf, tm)
		tl := freqAnalysis(ecBuf, emBuf, cfg.V, cfg.SizeAware, !cfg.ArbitraryTies)
		ecBuf = tc.rrow(cur.C).flatInto(ecBuf, tc)
		emBuf = tm.rrow(cur.M).flatInto(emBuf, tm)
		tr := freqAnalysis(ecBuf, emBuf, cfg.V, cfg.SizeAware, !cfg.ArbitraryTies)
		for _, side := range [2][]Pair{tl, tr} {
			for _, pr := range side {
				if _, seen := t[pr.C]; seen {
					continue
				}
				t[pr.C] = pr.M
				if cfg.W <= 0 || len(g)-head <= cfg.W {
					g = append(g, pr)
				} else {
					stats.DroppedByW++
				}
			}
		}
		if pending := len(g) - head - 1; pending > stats.PeakQueue {
			stats.PeakQueue = pending
		}
	}

	out := make([]Pair, 0, len(t))
	for cf, mf := range t {
		out = append(out, Pair{C: cf, M: mf})
	}
	slices.SortFunc(out, func(a, b Pair) int { return a.C.Compare(b.C) })
	stats.Inferred = len(out)
	return Result{Pairs: out, Stats: stats, UniqueTarget: tc.unique()}, nil
}

// SampleLeaked draws leaked ciphertext-plaintext pairs for known-plaintext
// mode: a uniform sample of unique ciphertext chunks of the target backup,
// paired with their true plaintexts, sized so that
// len(result)/unique(target) equals leakageRate (Section 5.3.3). The seed
// makes the sample reproducible; the randomness is a private *rand.Rand,
// never global generator state.
func SampleLeaked(target *trace.Backup, truth GroundTruth, leakageRate float64, seed int64) []Pair {
	if leakageRate <= 0 {
		return nil
	}
	seen := make(map[fphash.Fingerprint]struct{}, len(target.Chunks))
	uniq := make([]fphash.Fingerprint, 0, len(target.Chunks))
	for _, ch := range target.Chunks {
		if _, ok := seen[ch.FP]; ok {
			continue
		}
		seen[ch.FP] = struct{}{}
		uniq = append(uniq, ch.FP)
	}
	slices.SortFunc(uniq, fphash.Fingerprint.Compare)
	n := int(float64(len(uniq))*leakageRate + 0.5)
	if n > len(uniq) {
		n = len(uniq)
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(uniq), func(i, j int) { uniq[i], uniq[j] = uniq[j], uniq[i] })
	out := make([]Pair, 0, n)
	for _, cf := range uniq[:n] {
		if mf, ok := truth[cf]; ok {
			out = append(out, Pair{C: cf, M: mf})
		}
	}
	return out
}
