package dedup

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"freqdedup/internal/chunker"
	"freqdedup/internal/container"
	"freqdedup/internal/fphash"
	"freqdedup/internal/mle"
	"freqdedup/internal/segment"
	"freqdedup/internal/trace"
)

func TestNewStoreWithShardsValidation(t *testing.T) {
	if got := NewStore(0).ShardCount(); got != DefaultShards {
		t.Fatalf("NewStore shard count = %d, want %d", got, DefaultShards)
	}
	if got := NewStoreWithShards(0, 0).ShardCount(); got != DefaultShards {
		t.Fatalf("shards=0 count = %d, want %d", got, DefaultShards)
	}
	for _, bad := range []int{-1, 257} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("shards=%d did not panic", bad)
				}
			}()
			NewStoreWithShards(0, bad)
		}()
	}
}

func TestPutBatchMatchesSequentialPuts(t *testing.T) {
	for _, shards := range []int{1, 4, 16} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			chunks := make([]PutChunk, 0, 300)
			rng := rand.New(rand.NewSource(41))
			for i := 0; i < 100; i++ {
				data := randData(int64(i), 64+rng.Intn(256))
				c := PutChunk{FP: fphash.FromBytes(data), Data: data}
				// Each chunk three times: duplicates inside one batch must
				// be detected exactly like sequential Puts detect them.
				chunks = append(chunks, c, c, c)
			}
			rng.Shuffle(len(chunks), func(i, j int) { chunks[i], chunks[j] = chunks[j], chunks[i] })

			seq := NewStoreWithShards(0, shards)
			seqDups := make([]bool, len(chunks))
			for i, c := range chunks {
				var err error
				if seqDups[i], err = seq.Put(c.FP, c.Data); err != nil {
					t.Fatal(err)
				}
			}
			bat := NewStoreWithShards(0, shards)
			batDups, err := bat.PutBatch(chunks)
			if err != nil {
				t.Fatal(err)
			}

			if !reflect.DeepEqual(seqDups, batDups) {
				t.Fatal("PutBatch duplicate flags differ from sequential Puts")
			}
			if seq.Stats() != bat.Stats() {
				t.Fatalf("stats differ: %+v vs %+v", seq.Stats(), bat.Stats())
			}
			for _, c := range chunks {
				got, err := bat.Get(c.FP)
				if err != nil || !bytes.Equal(got, c.Data) {
					t.Fatalf("Get(%v) after PutBatch wrong (%v)", c.FP, err)
				}
			}
		})
	}
}

func TestPutBatchEmpty(t *testing.T) {
	s := NewStore(0)
	if dups, err := s.PutBatch(nil); len(dups) != 0 || err != nil {
		t.Fatalf("PutBatch(nil) = %v, %v", dups, err)
	}
}

func TestStatsIdenticalAcrossShardCounts(t *testing.T) {
	load := func(s *Store) {
		for i := 0; i < 500; i++ {
			data := randData(int64(i%200), 128) // 200 unique, 500 logical
			if _, err := s.Put(fphash.FromBytes(data), data); err != nil {
				t.Fatal(err)
			}
		}
	}
	want := trace.DedupStats{}
	for i, shards := range []int{1, 2, 16, 256} {
		s := NewStoreWithShards(0, shards)
		load(s)
		st := s.Stats()
		if st.UniqueChunks != 200 || st.LogicalChunks != 500 {
			t.Fatalf("shards=%d: stats %+v", shards, st)
		}
		if i == 0 {
			want = st
		} else if st != want {
			t.Fatalf("shards=%d: stats %+v differ from shards=1 %+v", shards, st, want)
		}
	}
}

// TestConcurrentPutGetPutBatch hammers one store from many goroutines
// mixing Put, Get, PutBatch, and Stats. Run it under -race; correctness
// is checked by final stats and content retrieval.
func TestConcurrentPutGetPutBatch(t *testing.T) {
	const (
		goroutines = 16
		perG       = 50
	)
	store := NewStoreWithShards(32<<10, DefaultShards)

	// A shared pool of chunks; every goroutine uploads a disjoint slice
	// plus the whole shared prefix, so cross-goroutine dedup is exercised.
	shared := make([]PutChunk, 64)
	for i := range shared {
		data := randData(int64(1000+i), 512)
		shared[i] = PutChunk{FP: fphash.FromBytes(data), Data: data}
	}

	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Batched upload of the shared pool.
			if _, err := store.PutBatch(shared); err != nil {
				errs <- err
				return
			}
			for i := 0; i < perG; i++ {
				data := randData(int64(g*perG+i), 256)
				fp := fphash.FromBytes(data)
				if _, err := store.Put(fp, data); err != nil {
					errs <- err
					return
				}
				got, err := store.Get(fp)
				if err != nil || !bytes.Equal(got, data) {
					errs <- fmt.Errorf("goroutine %d: Get after Put failed (%v)", g, err)
					return
				}
				if _, err := store.Get(shared[i%len(shared)].FP); err != nil {
					errs <- fmt.Errorf("goroutine %d: shared chunk missing (%v)", g, err)
					return
				}
				_ = store.Stats() // aggregate while writers run
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	st := store.Stats()
	wantUnique := len(shared) + goroutines*perG
	if st.UniqueChunks != wantUnique {
		t.Fatalf("unique chunks = %d, want %d", st.UniqueChunks, wantUnique)
	}
	wantLogical := goroutines * (len(shared) + perG)
	if st.LogicalChunks != wantLogical {
		t.Fatalf("logical chunks = %d, want %d", st.LogicalChunks, wantLogical)
	}
	if store.UniqueChunks() != wantUnique {
		t.Fatalf("UniqueChunks() = %d, want %d", store.UniqueChunks(), wantUnique)
	}
	if store.ContainerCount() == 0 {
		t.Fatal("no containers")
	}
}

// --- Determinism against the pre-refactor serial engine. ---

// refStore replicates the original single-mutex engine byte for byte: one
// global index, one container sequence, Puts applied strictly in call
// order. It is the oracle the sharded store with shardCount=1 must match.
type refStore struct {
	index      map[fphash.Fingerprint]container.Location
	containers *container.Store
}

func newRefStore(containerBytes int) *refStore {
	if containerBytes == 0 {
		containerBytes = container.DefaultBytes
	}
	return &refStore{
		index:      make(map[fphash.Fingerprint]container.Location),
		containers: container.New(containerBytes),
	}
}

func (s *refStore) put(fp fphash.Fingerprint, data []byte) {
	if _, ok := s.index[fp]; ok {
		return
	}
	buf := make([]byte, len(data))
	copy(buf, data)
	loc, err := s.containers.Append(container.Entry{FP: fp, Size: uint32(len(data)), Data: buf})
	if err != nil {
		panic(err) // memory backend never fails
	}
	s.index[fp] = loc
}

// refBackup replicates the original serial Client.Backup loop: chunk,
// segment, scramble with the same RNG consumption, encrypt, and upload
// one chunk at a time.
func refBackup(t *testing.T, s *refStore, cfg Config, data []byte, rng *rand.Rand) *mle.Recipe {
	t.Helper()
	cdc, err := chunker.NewContentDefined(bytes.NewReader(data), cfg.Chunking)
	if err != nil {
		t.Fatal(err)
	}
	chunks, err := chunker.All(cdc)
	if err != nil {
		t.Fatal(err)
	}
	recipe := &mle.Recipe{Entries: make([]mle.RecipeEntry, len(chunks))}
	refs := make([]trace.ChunkRef, len(chunks))
	for i, ch := range chunks {
		refs[i] = trace.ChunkRef{FP: ch.Fingerprint, Size: uint32(ch.Size())}
	}
	segs, err := segment.Split(refs, cfg.Segments)
	if err != nil {
		t.Fatal(err)
	}
	for _, sg := range segs {
		var segKey mle.Key
		if cfg.Encryption == EncMinHash {
			fps := make([]fphash.Fingerprint, 0, sg.Len())
			for _, ref := range refs[sg.Start:sg.End] {
				fps = append(fps, ref.FP)
			}
			segKey, err = mle.NewMinHash(cfg.Deriver).SegmentKey(fps)
			if err != nil {
				t.Fatal(err)
			}
		}
		order := make([]int, sg.Len())
		for i := range order {
			order[i] = sg.Start + i
		}
		if cfg.Scramble {
			order = scrambleOrder(order, rng)
		}
		for _, idx := range order {
			ch := chunks[idx]
			var key mle.Key
			switch cfg.Encryption {
			case EncMinHash:
				key = segKey
			default:
				key = mle.ConvergentKey(ch.Data)
			}
			ct := mle.EncryptDeterministic(key, ch.Data)
			cfp := fphash.FromBytes(ct)
			s.put(cfp, ct)
			recipe.Entries[idx] = mle.RecipeEntry{Fingerprint: cfp, Key: key, Size: uint32(ch.Size())}
		}
	}
	return recipe
}

// sameLayout asserts two container sequences are bit-for-bit identical:
// same container IDs, same entries in the same order, same bytes.
func sameLayout(t *testing.T, got, want *container.Store) {
	t.Helper()
	if got.Count() != want.Count() {
		t.Fatalf("container count %d, want %d", got.Count(), want.Count())
	}
	for id := 0; ; id++ {
		gc, gerr := got.Container(id)
		wc, werr := want.Container(id)
		gok, wok := gerr == nil, werr == nil
		if gok != wok {
			t.Fatalf("container %d: exists %v, want %v", id, gok, wok)
		}
		if !gok {
			return
		}
		if gc.Bytes != wc.Bytes || len(gc.Entries) != len(wc.Entries) {
			t.Fatalf("container %d: %d entries/%d bytes, want %d/%d",
				id, len(gc.Entries), gc.Bytes, len(wc.Entries), wc.Bytes)
		}
		for i := range gc.Entries {
			ge, we := gc.Entries[i], wc.Entries[i]
			if ge.FP != we.FP || ge.Size != we.Size || !bytes.Equal(ge.Data, we.Data) {
				t.Fatalf("container %d entry %d differs", id, i)
			}
		}
	}
}

// TestShardCount1MatchesSerialEngine is the refactor's bit-for-bit
// guarantee: a single-shard store driven by the pipelined client — at any
// worker count — produces the identical recipe AND the identical physical
// container layout as the original serial engine.
func TestShardCount1MatchesSerialEngine(t *testing.T) {
	const containerBytes = 64 << 10
	data := randData(99, 2<<20)

	cfgs := map[string]Config{
		"convergent": {},
		"minhash-scrambled": {
			Encryption:   EncMinHash,
			Deriver:      mle.NewLocalDeriver([]byte("system secret")),
			Scramble:     true,
			ScrambleSeed: 7,
		},
	}
	for name, base := range cfgs {
		t.Run(name, func(t *testing.T) {
			// Oracle: the pre-refactor serial engine.
			refCfg := base
			refCfg.Chunking = chunker.DefaultParams()
			if refCfg.Segments == (segment.Params{}) {
				refCfg.Segments = segment.DefaultParams()
			}
			seed := refCfg.ScrambleSeed
			if seed == 0 {
				seed = 0x5eed
			}
			ref := newRefStore(containerBytes)
			refRecipe := refBackup(t, ref, refCfg, data, rand.New(rand.NewSource(seed)))
			// Second backup of mutated data exercises dedup hits too.
			data2 := mutate(data, 100)
			refRecipe2 := refBackup(t, ref, refCfg, data2, rand.New(rand.NewSource(seed+1)))

			for _, workers := range []int{1, 4, 0} {
				cfg := base
				cfg.Workers = workers
				store := NewStoreWithShards(containerBytes, 1)
				client, err := NewClient(store, cfg)
				if err != nil {
					t.Fatal(err)
				}
				recipe, err := client.Backup(bytes.NewReader(data))
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(recipe, refRecipe) {
					t.Fatalf("workers=%d: recipe differs from serial engine", workers)
				}
				// refBackup reseeds per backup; mirror that with a fresh
				// client over the same store for the second stream.
				cfg2 := cfg
				cfg2.ScrambleSeed = seed + 1
				client2, err := NewClient(store, cfg2)
				if err != nil {
					t.Fatal(err)
				}
				recipe2, err := client2.Backup(bytes.NewReader(data2))
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(recipe2, refRecipe2) {
					t.Fatalf("workers=%d: second recipe differs from serial engine", workers)
				}
				sameLayout(t, store.shards[0].containers, ref.containers)
			}
		})
	}
}

// TestBackupDeterministicAcrossWorkerCounts checks the worker-count
// invariant on a default (multi-shard) store: identical recipes and
// identical stats for 1, 2, and GOMAXPROCS workers.
func TestBackupDeterministicAcrossWorkerCounts(t *testing.T) {
	data := randData(123, 4<<20)
	var wantRecipe *mle.Recipe
	var wantStats trace.DedupStats
	for i, workers := range []int{1, 2, 0} {
		store := NewStore(0)
		client, err := NewClient(store, Config{
			Encryption:   EncMinHash,
			Deriver:      mle.NewLocalDeriver([]byte("k")),
			Scramble:     true,
			ScrambleSeed: 3,
			Workers:      workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		recipe, err := client.Backup(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			wantRecipe, wantStats = recipe, store.Stats()
			continue
		}
		if !reflect.DeepEqual(recipe, wantRecipe) {
			t.Fatalf("workers=%d: recipe differs from workers=1", workers)
		}
		if store.Stats() != wantStats {
			t.Fatalf("workers=%d: stats differ from workers=1", workers)
		}
	}
}

// TestParallelBackupsSharedStore runs many pipelined clients against one
// sharded store concurrently (the actual production shape) and verifies
// every stream restores bit-for-bit. Run under -race.
func TestParallelBackupsSharedStore(t *testing.T) {
	store := NewStore(64 << 10)
	shared := randData(7, 512<<10)
	const clients = 8
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			client, err := NewClient(store, Config{ScrambleSeed: int64(i + 1)})
			if err != nil {
				errs <- err
				return
			}
			data := append(append([]byte(nil), shared...), randData(int64(100+i), 128<<10)...)
			recipe, err := client.Backup(bytes.NewReader(data))
			if err != nil {
				errs <- err
				return
			}
			var out bytes.Buffer
			if err := client.Restore(recipe, &out); err != nil {
				errs <- err
				return
			}
			if !bytes.Equal(out.Bytes(), data) {
				errs <- fmt.Errorf("client %d: restore mismatch", i)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// The shared prefix deduplicates across all clients.
	st := store.Stats()
	if st.PhysicalBytes > uint64(len(shared))+clients*(160<<10) {
		t.Fatalf("cross-client dedup ineffective: physical = %d", st.PhysicalBytes)
	}
}

func TestNewClientWorkerValidation(t *testing.T) {
	if _, err := NewClient(NewStore(0), Config{Workers: -1}); err == nil {
		t.Fatal("negative worker count accepted")
	}
}

// TestBackupWorkerErrorPropagates ensures a failing key deriver aborts the
// parallel stage and surfaces the error.
func TestBackupWorkerErrorPropagates(t *testing.T) {
	store := NewStore(0)
	boom := fmt.Errorf("deriver down")
	client, err := NewClient(store, Config{
		Encryption: EncServerAided,
		Deriver: mle.KeyDeriverFunc(func(fphash.Fingerprint) (mle.Key, error) {
			return mle.Key{}, boom
		}),
		Workers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Backup(bytes.NewReader(randData(1, 1<<20))); err == nil {
		t.Fatal("Backup succeeded with failing deriver")
	}
}

// TestGCShardedStore exercises retention against a multi-shard store:
// delete one of two overlapping backups, GC, and verify the survivor
// restores while the dead chunks are gone from every shard.
func TestGCShardedStore(t *testing.T) {
	store := NewStoreWithShards(32<<10, DefaultShards)
	client, err := NewClient(store, Config{})
	if err != nil {
		t.Fatal(err)
	}
	v1 := randData(61, 1<<20)
	v2 := mutate(v1, 62)
	r1, err := client.Backup(bytes.NewReader(v1))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := client.Backup(bytes.NewReader(v2))
	if err != nil {
		t.Fatal(err)
	}
	if err := store.RegisterBackup("b1", r1); err != nil {
		t.Fatal(err)
	}
	if err := store.RegisterBackup("b2", r2); err != nil {
		t.Fatal(err)
	}
	if err := store.DeleteBackup("b1"); err != nil {
		t.Fatal(err)
	}
	before := store.Stats().PhysicalBytes
	st, err := store.GC()
	if err != nil {
		t.Fatal(err)
	}
	if st.ChunksReclaimed == 0 {
		t.Fatal("GC reclaimed nothing")
	}
	if got := store.Stats().PhysicalBytes; got != before-st.BytesReclaimed {
		t.Fatalf("physical accounting wrong: %d != %d - %d", got, before, st.BytesReclaimed)
	}
	var out bytes.Buffer
	if err := client.Restore(r2, &out); err != nil {
		t.Fatalf("survivor broken after sharded GC: %v", err)
	}
	if !bytes.Equal(out.Bytes(), v2) {
		t.Fatal("survivor restore mismatch")
	}
	missing := make(map[fphash.Fingerprint]struct{})
	for _, e := range r1.Entries {
		if _, err := store.Get(e.Fingerprint); errors.Is(err, ErrNotFound) {
			missing[e.Fingerprint] = struct{}{}
		}
	}
	if len(missing) != st.ChunksReclaimed {
		// Every reclaimed chunk must actually be unreachable; chunks shared
		// with b2 must remain.
		t.Fatalf("missing %d unique chunks, reclaimed %d", len(missing), st.ChunksReclaimed)
	}
}
