package rabin

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestRollMatchesDirect verifies the O(1) rolling update against the
// one-shot reference: after rolling a long input through a window of size w,
// the fingerprint must equal the direct fingerprint of the last w bytes.
func TestRollMatchesDirect(t *testing.T) {
	for _, window := range []int{1, 2, 16, DefaultWindow, 64} {
		h := New(window)
		rng := rand.New(rand.NewSource(42))
		data := make([]byte, window*5+3)
		for i := range data {
			data[i] = byte(rng.Intn(256))
		}
		var got uint64
		for _, b := range data {
			got = h.Roll(b)
		}
		want := Fingerprint(data[len(data)-window:])
		if got != want {
			t.Errorf("window=%d: rolling fp %#x, direct fp %#x", window, got, want)
		}
	}
}

// TestRollPositionIndependent checks the defining property of a rolling
// hash: the fingerprint depends only on the window contents, not on what
// preceded the window.
func TestRollPositionIndependent(t *testing.T) {
	f := func(prefixSeed int64, windowSeed int64) bool {
		const window = DefaultWindow
		rngW := rand.New(rand.NewSource(windowSeed))
		win := make([]byte, window)
		for i := range win {
			win[i] = byte(rngW.Intn(256))
		}

		roll := func(prefix []byte) uint64 {
			h := New(window)
			var fp uint64
			for _, b := range prefix {
				fp = h.Roll(b)
			}
			for _, b := range win {
				fp = h.Roll(b)
			}
			return fp
		}

		rngP := rand.New(rand.NewSource(prefixSeed))
		prefix := make([]byte, 1+rngP.Intn(200))
		for i := range prefix {
			prefix[i] = byte(rngP.Intn(256))
		}
		return roll(nil) == roll(prefix)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestResetRestoresInitialState(t *testing.T) {
	h := New(DefaultWindow)
	data := []byte("some bytes to pollute the window state")
	for _, b := range data {
		h.Roll(b)
	}
	h.Reset()
	if h.Sum64() != 0 {
		t.Fatalf("Sum64 after Reset = %#x, want 0", h.Sum64())
	}
	var a uint64
	for _, b := range data {
		a = h.Roll(b)
	}
	h2 := New(DefaultWindow)
	var want uint64
	for _, b := range data {
		want = h2.Roll(b)
	}
	if a != want {
		t.Fatalf("after Reset, rolling diverges: %#x vs %#x", a, want)
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	a := Fingerprint([]byte("the quick brown fox"))
	b := Fingerprint([]byte("the quick brown foy"))
	if a == b {
		t.Fatal("single-byte change did not alter fingerprint")
	}
}

func TestFingerprintEmptyAndZeroBytes(t *testing.T) {
	if Fingerprint(nil) != 0 {
		t.Fatal("fingerprint of empty input should be 0")
	}
	// Leading zero bytes are absorbed (polynomial has zero coefficients);
	// this is inherent to Rabin fingerprints and fine for chunking since the
	// window has fixed size.
	if Fingerprint([]byte{0, 0, 0}) != 0 {
		t.Fatal("fingerprint of zero bytes should be 0")
	}
}

func TestNewPanicsOnBadWindow(t *testing.T) {
	for _, w := range []int{0, -5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) did not panic", w)
				}
			}()
			New(w)
		}()
	}
}

func TestWindowAccessor(t *testing.T) {
	if got := New(17).Window(); got != 17 {
		t.Fatalf("Window() = %d, want 17", got)
	}
}

// TestDistribution sanity-checks that fingerprints of random windows spread
// across the 64-bit space (each of the top 8 bits roughly balanced).
func TestDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	h := New(DefaultWindow)
	const samples = 8192
	var bitOnes [8]int
	for i := 0; i < samples; i++ {
		fp := h.Roll(byte(rng.Intn(256)))
		for bit := 0; bit < 8; bit++ {
			if fp>>(63-uint(bit))&1 == 1 {
				bitOnes[bit]++
			}
		}
	}
	for bit, ones := range bitOnes {
		if ones < samples/3 || ones > 2*samples/3 {
			t.Errorf("top bit %d skewed: %d/%d", bit, ones, samples)
		}
	}
}

func BenchmarkRoll(b *testing.B) {
	h := New(DefaultWindow)
	b.SetBytes(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Roll(byte(i))
	}
}
