// Command tracegen generates the evaluation datasets (Section 5.1) and
// writes them as binary trace files consumable by cmd/attack and
// cmd/defend.
//
// Usage:
//
//	tracegen -dataset fsl -out fsl.trace
//	tracegen -dataset all -out traces/
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"freqdedup/internal/trace"
)

func main() {
	dataset := flag.String("dataset", "all", "dataset to generate: fsl, synthetic, vm, or all")
	out := flag.String("out", ".", "output file (single dataset) or directory (all)")
	seed := flag.Int64("seed", 0, "override the generator seed (0 = default)")
	flag.Parse()

	gens := map[string]func() *trace.Dataset{
		"fsl": func() *trace.Dataset {
			p := trace.DefaultFSLParams()
			if *seed != 0 {
				p.Seed = *seed
			}
			return trace.GenerateFSL(p)
		},
		"synthetic": func() *trace.Dataset {
			p := trace.DefaultSyntheticParams()
			if *seed != 0 {
				p.Seed = *seed
			}
			return trace.GenerateSynthetic(p)
		},
		"vm": func() *trace.Dataset {
			p := trace.DefaultVMParams()
			if *seed != 0 {
				p.Seed = *seed
			}
			return trace.GenerateVM(p)
		},
	}

	var names []string
	if *dataset == "all" {
		names = []string{"fsl", "synthetic", "vm"}
	} else {
		if _, ok := gens[*dataset]; !ok {
			fmt.Fprintf(os.Stderr, "tracegen: unknown dataset %q\n", *dataset)
			os.Exit(2)
		}
		names = []string{*dataset}
	}

	for _, name := range names {
		d := gens[name]()
		path := *out
		if *dataset == "all" || isDir(path) {
			if err := os.MkdirAll(path, 0o755); err != nil {
				fatal(err)
			}
			path = filepath.Join(path, name+".trace")
		}
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		if err := trace.Write(f, d); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		st := d.Stats()
		fmt.Printf("%s: %d backups, %d chunks (%d unique), %.1fx dedup -> %s\n",
			name, len(d.Backups), st.LogicalChunks, st.UniqueChunks, st.Ratio(), path)
	}
}

func isDir(path string) bool {
	fi, err := os.Stat(path)
	return err == nil && fi.IsDir()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
