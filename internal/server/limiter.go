package server

import (
	"sync"
	"time"
)

// byteLimiter is a byte-granular token bucket used for per-connection
// rate shaping: waitN sleeps until n bytes of budget exist instead of
// rejecting, so a limited client is slowed, not failed. It differs from
// keymgr.TokenBucket, which gates whole requests and answers yes/no — a
// backup stream needs smooth pacing, not admission control.
//
// A request larger than the burst is allowed to take the bucket negative
// and pay the debt in sleep; the bucket never deadlocks on big windows.
type byteLimiter struct {
	mu     sync.Mutex
	rate   float64 // bytes per second
	burst  float64 // bucket capacity in bytes
	tokens float64
	last   time.Time

	// now and sleep are injectable for tests.
	now   func() time.Time
	sleep func(time.Duration)
}

// newByteLimiter returns a limiter shaping to rate bytes/second with the
// given burst capacity (rate/8, min 64 KiB, if zero). A nil limiter (rate
// <= 0) is valid and unlimited.
func newByteLimiter(rate float64, burst int) *byteLimiter {
	if rate <= 0 {
		return nil
	}
	b := float64(burst)
	if b <= 0 {
		b = rate / 8
		if b < 64<<10 {
			b = 64 << 10
		}
	}
	l := &byteLimiter{rate: rate, burst: b, tokens: b, now: time.Now, sleep: time.Sleep}
	l.last = l.now()
	return l
}

// waitN blocks until n bytes of budget are available, then spends them.
func (l *byteLimiter) waitN(n int) {
	if l == nil || n <= 0 {
		return
	}
	l.mu.Lock()
	now := l.now()
	l.tokens += now.Sub(l.last).Seconds() * l.rate
	l.last = now
	if l.tokens > l.burst {
		l.tokens = l.burst
	}
	l.tokens -= float64(n)
	debt := -l.tokens
	l.mu.Unlock()
	if debt > 0 {
		l.sleep(time.Duration(debt / l.rate * float64(time.Second)))
	}
}
