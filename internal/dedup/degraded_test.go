package dedup

import (
	"bytes"
	"errors"
	"sync"
	"testing"

	"freqdedup/internal/container"
	"freqdedup/internal/mle"
)

// corruptBackend wraps a Backend and fails Load (and Get-through-Scan
// stays honest: Scan is untouched, so index rebuilds still work) with
// container.ErrCorrupt for chosen containers — the deterministic stand-in
// for a post-fsync media error caught by the record CRC.
type corruptBackend struct {
	container.Backend
	mu  sync.Mutex
	bad map[containerRef]bool
}

func (b *corruptBackend) markBad(ref containerRef) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.bad == nil {
		b.bad = make(map[containerRef]bool)
	}
	b.bad[ref] = true
}

func (b *corruptBackend) Load(shard, id int) (*container.Container, error) {
	b.mu.Lock()
	bad := b.bad[containerRef{shard: shard, id: id}]
	b.mu.Unlock()
	if bad {
		return nil, container.ErrCorrupt
	}
	return b.Backend.Load(shard, id)
}

// degradedFixture backs up ~1 MiB into small containers, seals
// everything, and marks the container of a mid-stream chunk corrupt.
// It returns the client, the original bytes, and the expected lost
// regions (every recipe entry whose chunk lives in the bad container).
func degradedFixture(t *testing.T, cfg Config) (*Client, *mle.Recipe, []byte, []LostRange) {
	t.Helper()
	data := randData(17, 1<<20)
	cb := &corruptBackend{Backend: container.NewMemBackend(DefaultShards)}
	store, err := NewStoreWithBackend(32<<10, cb)
	if err != nil {
		t.Fatal(err)
	}
	client, err := NewClient(store, cfg)
	if err != nil {
		t.Fatal(err)
	}
	recipe, err := client.Backup(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Sync(); err != nil {
		t.Fatal(err)
	}
	// Corrupt the container of a chunk in the middle of the stream.
	mid := len(recipe.Entries) / 2
	ref, _, ok, err := store.locate(recipe.Entries[mid].Fingerprint)
	if err != nil || !ok {
		t.Fatalf("mid-stream chunk not located (err=%v)", err)
	}
	cb.markBad(ref)

	// Every entry stored in that container is now unrecoverable.
	var lost []LostRange
	var off uint64
	for _, e := range recipe.Entries {
		if r, _, ok, _ := store.locate(e.Fingerprint); ok && r == ref {
			lost = append(lost, LostRange{Offset: off, Length: uint64(e.Size), Fingerprint: e.Fingerprint})
		}
		off += uint64(e.Size)
	}
	if len(lost) == 0 {
		t.Fatal("fixture: no entries mapped to the corrupted container")
	}
	return client, recipe, data, lost
}

// checkDegradedOutput asserts out is exact outside the lost ranges and
// zero inside them.
func checkDegradedOutput(t *testing.T, data, out []byte, lost []LostRange) {
	t.Helper()
	if len(out) != len(data) {
		t.Fatalf("degraded output %d bytes, want %d", len(out), len(data))
	}
	expect := append([]byte(nil), data...)
	for _, r := range lost {
		for i := r.Offset; i < r.Offset+r.Length; i++ {
			expect[i] = 0
		}
	}
	if !bytes.Equal(out, expect) {
		t.Fatal("degraded output differs outside/inside the reported lost ranges")
	}
}

// TestRestoreCorruptContainerStrict: without DegradedRestore, a corrupt
// container mid-stream fails both restore paths with an error wrapping
// container.ErrCorrupt, the parallel pipeline drains without deadlock,
// and every pooled buffer comes back (run under -race, this is the
// satellite's propagation proof).
func TestRestoreCorruptContainerStrict(t *testing.T) {
	for _, mode := range []struct {
		name string
		cfg  Config
	}{
		{"serial", Config{Workers: 1}},
		{"parallel", Config{Workers: 8, RestoreCacheContainers: 4}},
	} {
		t.Run(mode.name, func(t *testing.T) {
			client, recipe, _, _ := degradedFixture(t, mode.cfg)
			baseline := RestoreBufsOutstanding()
			var out bytes.Buffer
			err := client.Restore(recipe, &out)
			if !errors.Is(err, container.ErrCorrupt) {
				t.Fatalf("restore over corrupt container: %v, want container.ErrCorrupt", err)
			}
			var de *DegradedError
			if errors.As(err, &de) {
				t.Fatal("strict restore returned a DegradedError")
			}
			if got := RestoreBufsOutstanding(); got != baseline {
				t.Fatalf("%d pooled restore buffers outstanding after failed restore, want %d", got, baseline)
			}
		})
	}
}

// TestRestoreDegraded: with DegradedRestore, both restore paths complete
// with zero-filled holes exactly at the corrupted container's chunks,
// report them through an errors.As-retrievable *DegradedError in stream
// order, and leak no pooled buffers.
func TestRestoreDegraded(t *testing.T) {
	for _, mode := range []struct {
		name string
		cfg  Config
	}{
		{"serial", Config{Workers: 1, DegradedRestore: true}},
		{"parallel", Config{Workers: 8, RestoreCacheContainers: 4, DegradedRestore: true}},
		{"parallelNoCache", Config{Workers: 4, DegradedRestore: true}},
	} {
		t.Run(mode.name, func(t *testing.T) {
			client, recipe, data, lost := degradedFixture(t, mode.cfg)
			baseline := RestoreBufsOutstanding()
			var out bytes.Buffer
			err := client.Restore(recipe, &out)
			var de *DegradedError
			if !errors.As(err, &de) {
				t.Fatalf("degraded restore error = %v, want *DegradedError", err)
			}
			if len(de.Ranges) != len(lost) {
				t.Fatalf("reported %d lost ranges, want %d", len(de.Ranges), len(lost))
			}
			for i, r := range de.Ranges {
				if r != lost[i] {
					t.Fatalf("lost range %d = %+v, want %+v", i, r, lost[i])
				}
			}
			checkDegradedOutput(t, data, out.Bytes(), lost)
			if got := RestoreBufsOutstanding(); got != baseline {
				t.Fatalf("%d pooled restore buffers outstanding after degraded restore, want %d", got, baseline)
			}
		})
	}
}

// TestRestoreDegradedMissingChunk: a chunk absent from the index entirely
// (deleted by repair, never uploaded) zero-fills the same way — including
// through the parallel planner, which cannot batch a location it does not
// have.
func TestRestoreDegradedMissingChunk(t *testing.T) {
	data := randData(23, 256<<10)
	store := NewStoreWithShards(32<<10, DefaultShards)
	client, err := NewClient(store, Config{Workers: 4, RestoreCacheContainers: 4, DegradedRestore: true})
	if err != nil {
		t.Fatal(err)
	}
	recipe, err := client.Backup(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	// Drop a mid-stream chunk from every shard index: simulate repair
	// having removed it.
	mid := len(recipe.Entries) / 2
	fp := recipe.Entries[mid].Fingerprint
	sh := store.shardFor(fp)
	sh.mu.Lock()
	delete(sh.index.(*mapIndex).m, fp)
	sh.mu.Unlock()

	var lost []LostRange
	var off uint64
	for _, e := range recipe.Entries {
		if e.Fingerprint == fp {
			lost = append(lost, LostRange{Offset: off, Length: uint64(e.Size), Fingerprint: fp})
		}
		off += uint64(e.Size)
	}
	var out bytes.Buffer
	err = client.Restore(recipe, &out)
	var de *DegradedError
	if !errors.As(err, &de) {
		t.Fatalf("restore with missing chunk = %v, want *DegradedError", err)
	}
	if len(de.Ranges) != len(lost) {
		t.Fatalf("reported %d lost ranges, want %d", len(de.Ranges), len(lost))
	}
	checkDegradedOutput(t, data, out.Bytes(), lost)
}
