package dedup

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"reflect"
	"sync"
	"testing"

	"freqdedup/internal/fphash"
	"freqdedup/internal/mle"
)

// slowReader trickles data in small fragments, keeping the streaming
// producer goroutine alive across many channel handoffs.
type slowReader struct {
	data []byte
	max  int
}

func (s *slowReader) Read(p []byte) (int, error) {
	if len(s.data) == 0 {
		return 0, io.EOF
	}
	n := s.max
	if n > len(p) {
		n = len(p)
	}
	if n > len(s.data) {
		n = len(s.data)
	}
	copy(p, s.data[:n])
	s.data = s.data[n:]
	return n, nil
}

// failAfterReader returns data until the budget is spent, then errors —
// exercising mid-stream failure of the producer goroutine.
type failAfterReader struct {
	data   []byte
	budget int
	err    error
}

func (f *failAfterReader) Read(p []byte) (int, error) {
	if f.budget <= 0 {
		return 0, f.err
	}
	n := len(p)
	if n > f.budget {
		n = f.budget
	}
	if n > len(f.data) {
		n = len(f.data)
	}
	copy(p, f.data[:n])
	f.budget -= n
	return n, nil
}

// TestStreamingBackupMatchesPlannedResults: the streaming path must produce
// the same recipe and store contents as a fragmented or whole-buffer read,
// at several worker counts, and restore bit-for-bit. Run under -race: the
// producer goroutine, the encrypt fan-out, and the consumer all touch the
// pipeline concurrently.
func TestStreamingBackupMatchesPlannedResults(t *testing.T) {
	data := randData(17, 6<<20) // several upload windows plus a partial one
	var wantRecipe *mle.Recipe
	for i, workers := range []int{1, 3, 0} {
		store := NewStoreWithShards(64<<10, 1)
		client, err := NewClient(store, Config{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		recipe, err := client.Backup(&slowReader{data: data, max: 64 << 10})
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			wantRecipe = recipe
		} else if !reflect.DeepEqual(recipe, wantRecipe) {
			t.Fatalf("workers=%d: streaming recipe differs", workers)
		}
		var out bytes.Buffer
		if err := client.Restore(recipe, &out); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out.Bytes(), data) {
			t.Fatalf("workers=%d: restore mismatch", workers)
		}
	}

	// Scramble routes through backupPlanned; scrambling reorders uploads,
	// not recipe entries, so the planned path's recipe must match the
	// streaming path's bit for bit.
	store := NewStoreWithShards(64<<10, 1)
	client, err := NewClient(store, Config{Workers: 2, Scramble: true, ScrambleSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	recipe, err := client.Backup(&slowReader{data: data, max: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(recipe, wantRecipe) {
		t.Fatal("planned-path (scramble) recipe differs from streaming recipe")
	}
	var out bytes.Buffer
	if err := client.Restore(recipe, &out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), data) {
		t.Fatal("planned-path restore mismatch")
	}
}

// TestStreamingBackupEmptyStream: the empty stream yields an empty recipe,
// identical to the planned path's.
func TestStreamingBackupEmptyStream(t *testing.T) {
	client, err := NewClient(NewStore(0), Config{})
	if err != nil {
		t.Fatal(err)
	}
	recipe, err := client.Backup(bytes.NewReader(nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(recipe.Entries) != 0 {
		t.Fatalf("empty stream produced %d entries", len(recipe.Entries))
	}
}

// TestStreamingBackupReadErrorMidStream: a reader failing mid-stream must
// surface the error and must not wedge the producer goroutine (the test
// finishing at all, under -race, is the real assertion).
func TestStreamingBackupReadErrorMidStream(t *testing.T) {
	boom := errors.New("disk detached")
	for _, workers := range []int{1, 4} {
		client, err := NewClient(NewStore(0), Config{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		_, err = client.Backup(&failAfterReader{
			data:   randData(3, 8<<20),
			budget: 3 << 20,
			err:    boom,
		})
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: Backup err = %v, want wrapped boom", workers, err)
		}
	}
}

// TestStreamingBackupEncryptErrorAbandonsProducer: an encrypt-stage failure
// returns while the producer may still be mid-stream; the done channel must
// release it rather than leak it blocked on a full chunk channel.
func TestStreamingBackupEncryptErrorAbandonsProducer(t *testing.T) {
	boom := fmt.Errorf("deriver down")
	var calls int
	var mu sync.Mutex
	client, err := NewClient(NewStore(0), Config{
		Encryption: EncServerAided,
		Deriver: mle.KeyDeriverFunc(func(fphash.Fingerprint) (mle.Key, error) {
			mu.Lock()
			calls++
			n := calls
			mu.Unlock()
			if n > 10 {
				return mle.Key{}, boom
			}
			return mle.Key{1}, nil
		}),
		Workers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 32 MiB: far more chunks than chunkQueueDepth + one window, so the
	// producer is guaranteed to outlive the first failing flush.
	if _, err := client.Backup(&slowReader{data: randData(5, 32<<20), max: 256 << 10}); !errors.Is(err, boom) {
		t.Fatalf("Backup err = %v, want deriver error", err)
	}
}

// TestServerAidedStreamingMatchesBuffered: deferred plaintext
// fingerprinting must derive the same keys the eager path derived — the
// recipe keys are a function of the plaintext fingerprint.
func TestServerAidedStreamingMatchesBuffered(t *testing.T) {
	data := randData(23, 2<<20)
	deriver := mle.NewLocalDeriver([]byte("secret"))
	var want *mle.Recipe
	for i, workers := range []int{1, 4} {
		store := NewStoreWithShards(0, 1)
		client, err := NewClient(store, Config{Encryption: EncServerAided, Deriver: deriver, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		recipe, err := client.Backup(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			want = recipe
			continue
		}
		if !reflect.DeepEqual(recipe, want) {
			t.Fatalf("workers=%d: server-aided recipe differs across worker counts", workers)
		}
	}
}
