package eval

import (
	"bytes"
	"strings"
	"testing"

	"freqdedup/internal/defense"
	"freqdedup/internal/trace"
	"freqdedup/internal/workload"
)

// TestRunScenarioTraceLevel runs one scenario with a nil pipeline (attack
// the generated chunk streams directly) and checks the result is sane.
func TestRunScenarioTraceLevel(t *testing.T) {
	opt := ScenarioOptions{Config: workload.Config{Seed: 5, Backups: 3, TotalBytes: 2 << 20}}
	res, err := RunScenario("fileserver", opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Name != "fileserver" || res.Backups != 3 || res.UniqueChunks == 0 {
		t.Fatalf("result %+v", res)
	}
	if res.DedupRatio <= 1 {
		t.Fatalf("dedup ratio %.2f, want > 1", res.DedupRatio)
	}
	mle := res.Rates[defense.SchemeMLE]
	combined := res.Rates[defense.SchemeCombined]
	if mle <= 0 {
		t.Fatalf("MLE rate %v, want > 0", mle)
	}
	if combined >= mle {
		t.Fatalf("combined rate %v not below MLE rate %v", combined, mle)
	}
}

// TestRunScenarioPipeline checks the pipeline hook runs and its output is
// what gets attacked.
func TestRunScenarioPipeline(t *testing.T) {
	var sawBackups int
	opt := ScenarioOptions{
		Config: workload.Config{Seed: 5, Backups: 4, TotalBytes: 1 << 20},
		Pipeline: func(d *trace.Dataset) (*trace.Dataset, error) {
			sawBackups = len(d.Backups)
			// Drop the middle backups: the result must reflect this view.
			return &trace.Dataset{Name: d.Name, Backups: []*trace.Backup{
				d.Backups[0], d.Backups[len(d.Backups)-1],
			}}, nil
		},
	}
	res, err := RunScenario("media", opt)
	if err != nil {
		t.Fatal(err)
	}
	if sawBackups != 4 {
		t.Fatalf("pipeline saw %d backups, want 4", sawBackups)
	}
	if res.Backups != 2 {
		t.Fatalf("result reports %d backups, want the pipeline's 2", res.Backups)
	}
}

func TestRunScenarioUnknownWorkload(t *testing.T) {
	if _, err := RunScenario("no-such", ScenarioOptions{}); err == nil {
		t.Fatal("unknown workload succeeded")
	}
}

// TestScenarioMatrixFigure checks the matrix figure has one row per
// selected workload and one series per scheme, and renders.
func TestScenarioMatrixFigure(t *testing.T) {
	opt := ScenarioOptions{
		Workloads: []string{"fileserver", "database"},
		Config:    workload.Config{Seed: 5, Backups: 3, TotalBytes: 1 << 20},
	}
	fig, err := ScenarioMatrix(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.X) != 2 || fig.X[0] != "fileserver" || fig.X[1] != "database" {
		t.Fatalf("figure rows %v", fig.X)
	}
	if len(fig.Series) != 3 {
		t.Fatalf("%d series, want 3", len(fig.Series))
	}
	for _, s := range fig.Series {
		if len(s.Y) != 2 {
			t.Fatalf("series %q has %d values, want 2", s.Name, len(s.Y))
		}
	}
	var buf bytes.Buffer
	fig.Render(&buf)
	out := buf.String()
	for _, want := range []string{"fileserver", "database", "MLE", "MinHash+scramble"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered figure missing %q:\n%s", want, out)
		}
	}
}
