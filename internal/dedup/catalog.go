package dedup

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"freqdedup/internal/gcommit"
	"freqdedup/internal/vfs"
)

// The snapshot catalog: the durable record of which snapshots a repository
// holds, kept beside the container shard files. Without it, retention
// state lives only in process memory and a reopened store treats every
// chunk as unreferenced — the "GC after reopen reclaims everything"
// failure the Repository front door exists to fix.
//
// The catalog is an append-only log in the same spirit as the `.fdc`
// container files: a 16-byte file header, then one self-contained record
// per mutation — a snapshot added (with its sealed recipe and summary
// metadata) or a snapshot deleted (a tombstone) — each protected by a
// CRC32 and fsynced before the mutation is acknowledged. Reopening
// replays the log; a record torn by a mid-append crash is detected and
// truncated away, so the replayed state is exactly the set of
// acknowledged mutations. When tombstones accumulate, the catalog is
// compacted: the live records are written to a fresh file that is fsynced
// and atomically renamed over the old one.

// CatalogName is the catalog's file name within a repository directory.
const CatalogName = "catalog.fdr"

// ErrCatalogCorrupt is returned when the catalog file fails structural
// validation or a non-tail record fails its checksum.
var ErrCatalogCorrupt = errors.New("dedup: snapshot catalog corrupt")

// ErrSnapshotExists is returned when adding a snapshot name that is
// already live in the catalog.
var ErrSnapshotExists = errors.New("dedup: snapshot already exists")

// ErrSnapshotNotFound is returned for operations on a snapshot name the
// catalog does not hold.
var ErrSnapshotNotFound = errors.New("dedup: snapshot not found")

// Catalog on-disk layout constants.
const (
	catMagic     = 0x46445243 // "FDRC": freqdedup recipe catalog
	catVersion   = 1
	catHeaderLen = 16 // magic + version + 2 reserved, u32 each

	catRecMagic = 0x46445231 // "FDR1": one catalog record
	// catRecHeaderLen is magic + kind + nameLen + payloadLen, u32 each.
	catRecHeaderLen = 16
	catRecTrailer   = 4 // CRC32 over header + name + payload

	catKindAdd    = 1
	catKindDelete = 2

	// catMetaLen is the fixed metadata prefix of an add record's payload:
	// created-at (unix seconds, i64), logical bytes (u64), chunk count
	// (u32), reserved (u32); the sealed recipe follows.
	catMetaLen = 24

	// catMaxName and catMaxPayload bound record fields during replay:
	// lengths beyond them cannot come from a well-formed writer and are
	// treated as structural corruption rather than attempted allocations.
	catMaxName    = 4 << 10
	catMaxPayload = 1 << 30
)

// SnapshotRecord is one live snapshot in the catalog: the sealed recipe
// that restores it plus the summary metadata a listing needs without
// unsealing anything.
type SnapshotRecord struct {
	// Name is the caller-chosen snapshot name, unique among live
	// snapshots.
	Name string
	// CreatedUnix is the snapshot's creation time in Unix seconds.
	CreatedUnix int64
	// LogicalBytes is the snapshot's pre-dedup size.
	LogicalBytes uint64
	// Chunks is the snapshot's logical chunk count.
	Chunks uint32
	// SealedRecipe is the recipe sealed under the repository key
	// (mle.Recipe.Seal); the catalog never sees plaintext keys.
	SealedRecipe []byte
}

// Catalog is a durable snapshot catalog. The zero value is not usable;
// construct with CreateCatalog, OpenCatalog, or NewMemCatalog. A Catalog
// is safe for concurrent use.
type Catalog struct {
	mu         sync.Mutex
	fsys       vfs.FS   // nil for a memory-only catalog
	f          vfs.File // nil for a memory-only catalog
	path       string
	closed     bool
	size       int64
	live       map[string]SnapshotRecord
	tombstones int // delete records in the file not yet compacted away
	scratch    []byte
	salvage    CatalogSalvageStats

	// Group commit: mutations append their record under c.mu, then release
	// it and call gc.Commit with their append's sequence number; concurrent
	// mutations share fsyncs. syncMu orders the committer's fsync against
	// the file-handle swaps in compactLocked and Close (lock order: c.mu
	// before syncMu; the fsync itself holds only syncMu).
	syncMu  sync.Mutex
	gc      *gcommit.Committer
	seq     int64        // last assigned append sequence
	pending []catPending // appended records not yet covered by a sync
}

// catPending maps an append sequence to the file offset its record starts
// at, so a failed commit can truncate the file back to the durable
// boundary.
type catPending struct {
	seq int64
	off int64
}

// initCommitter wires the catalog's group committer. Catalog fsync
// failures are sticky: the file tail past the last successful sync is in
// an unknown durable state, so the instance refuses further appends and
// the caller reopens (replay truncates any torn tail).
func (c *Catalog) initCommitter() {
	c.gc = gcommit.New(func() error {
		c.syncMu.Lock()
		defer c.syncMu.Unlock()
		if c.f == nil {
			return errors.New("dedup: catalog is closed")
		}
		return c.f.Sync()
	}, true)
}

// SetGroupCommitWindow sets the straggler window for catalog group
// commit: a leader delays its fsync this long so concurrent mutations can
// join the round. Zero (the default) syncs immediately.
func (c *Catalog) SetGroupCommitWindow(d time.Duration) {
	if c.gc != nil {
		c.gc.SetWindow(d)
	}
}

// CommitSyncs returns how many catalog fsync rounds have run — with
// concurrent mutations this is less than the mutation count, the batching
// ratio group commit exists to win.
func (c *Catalog) CommitSyncs() int64 {
	if c.gc == nil {
		return 0
	}
	return c.gc.Syncs()
}

// NewMemCatalog returns a catalog kept only in memory — the
// backendless-repository counterpart of MemBackend. Nothing survives the
// process.
func NewMemCatalog() *Catalog {
	return &Catalog{live: make(map[string]SnapshotRecord)}
}

// CreateCatalog initializes a new, empty catalog file. It fails if the
// file already exists.
func CreateCatalog(path string) (*Catalog, error) {
	return CreateCatalogFS(vfs.OS, path)
}

// CreateCatalogFS is CreateCatalog against an explicit filesystem.
func CreateCatalogFS(fsys vfs.FS, path string) (*Catalog, error) {
	f, err := fsys.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, fmt.Errorf("dedup: create catalog: %w", err)
	}
	var hdr [catHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:], catMagic)
	binary.LittleEndian.PutUint32(hdr[4:], catVersion)
	_, err = f.Write(hdr[:])
	if err == nil {
		err = f.Sync()
	}
	if err != nil {
		f.Close()
		fsys.Remove(path)
		return nil, fmt.Errorf("dedup: write catalog header: %w", err)
	}
	if err := vfs.SyncDir(fsys, filepath.Dir(path)); err != nil {
		f.Close()
		fsys.Remove(path)
		return nil, err
	}
	c := &Catalog{
		fsys: fsys,
		f:    f,
		path: path,
		size: catHeaderLen,
		live: make(map[string]SnapshotRecord),
	}
	c.initCommitter()
	return c, nil
}

// OpenCatalog opens an existing catalog file and replays its records. A
// record torn by a mid-append crash — an incomplete tail, or a final
// record whose checksum fails — is discarded by truncating the file back
// to the last acknowledged record. Structural damage anywhere else
// returns ErrCatalogCorrupt.
func OpenCatalog(path string) (*Catalog, error) {
	return OpenCatalogFS(vfs.OS, path)
}

// OpenCatalogFS is OpenCatalog against an explicit filesystem.
func OpenCatalogFS(fsys vfs.FS, path string) (*Catalog, error) {
	f, err := fsys.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, fmt.Errorf("dedup: open catalog: %w", err)
	}
	c := &Catalog{fsys: fsys, f: f, path: path, live: make(map[string]SnapshotRecord)}
	c.initCommitter()
	if err := c.replay(false); err != nil {
		f.Close()
		return nil, err
	}
	return c, nil
}

// CatalogSalvageStats reports what a salvage open of the catalog dropped.
type CatalogSalvageStats struct {
	// RecordsDropped counts mid-file records skipped because their
	// checksum failed or their structure could not be parsed.
	RecordsDropped int
	// BytesSkipped is the total size of the skipped regions.
	BytesSkipped int64
}

// Damaged reports whether the salvage pass had to drop anything.
func (s CatalogSalvageStats) Damaged() bool {
	return s.RecordsDropped > 0 || s.BytesSkipped > 0
}

// OpenCatalogSalvage opens a catalog whose file may be damaged mid-file —
// the fsck path for catalogs OpenCatalog rejects with ErrCatalogCorrupt.
// Unparseable or checksum-failing records are skipped (the replay
// re-synchronizes on the next record whose header parses and whose CRC
// verifies); a tombstone for a snapshot whose add record was lost is
// ignored rather than fatal. If anything was dropped the catalog is
// immediately compacted, so the on-disk file is clean again and appends
// are safe.
func OpenCatalogSalvage(fsys vfs.FS, path string) (*Catalog, CatalogSalvageStats, error) {
	f, err := fsys.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, CatalogSalvageStats{}, fmt.Errorf("dedup: open catalog: %w", err)
	}
	c := &Catalog{fsys: fsys, f: f, path: path, live: make(map[string]SnapshotRecord)}
	c.initCommitter()
	if err := c.replay(true); err != nil {
		f.Close()
		return nil, c.salvage, err
	}
	if c.salvage.Damaged() {
		if err := c.compactLocked(); err != nil {
			f.Close()
			return nil, c.salvage, fmt.Errorf("dedup: rewrite salvaged catalog: %w", err)
		}
	}
	return c, c.salvage, nil
}

// replay scans the catalog file, rebuilding the live-snapshot map and
// truncating a torn tail. In salvage mode, damaged mid-file records are
// skipped and counted instead of failing the open.
func (c *Catalog) replay(salvage bool) error {
	st, err := c.f.Stat()
	if err != nil {
		return err
	}
	size := st.Size()
	if size < catHeaderLen {
		return fmt.Errorf("%w: %s shorter than its header", ErrCatalogCorrupt, c.path)
	}
	var hdr [catHeaderLen]byte
	if _, err := c.f.ReadAt(hdr[:], 0); err != nil {
		return err
	}
	if m := binary.LittleEndian.Uint32(hdr[0:]); m != catMagic {
		return fmt.Errorf("%w: %s has bad magic %#x", ErrCatalogCorrupt, c.path, m)
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != catVersion {
		return fmt.Errorf("%w: %s has unsupported version %d", ErrCatalogCorrupt, c.path, v)
	}

	pos := int64(catHeaderLen)
	var rec [catRecHeaderLen]byte
	// damaged re-synchronizes a salvage replay on the next record whose
	// header parses and whose checksum verifies, counting what it skips.
	damaged := func(pos int64) (int64, bool) {
		next, ok := resyncCatalogRecord(c.f, pos+1, size)
		if !ok {
			c.salvage.BytesSkipped += size - pos
			return size, false
		}
		c.salvage.RecordsDropped++
		c.salvage.BytesSkipped += next - pos
		return next, true
	}
	for pos < size {
		if pos+catRecHeaderLen > size {
			break // torn tail: header itself incomplete
		}
		if _, err := c.f.ReadAt(rec[:], pos); err != nil {
			return err
		}
		if m := binary.LittleEndian.Uint32(rec[0:]); m != catRecMagic {
			if salvage {
				pos, _ = damaged(pos)
				continue
			}
			return fmt.Errorf("%w: %s: bad record magic %#x at offset %d", ErrCatalogCorrupt, c.path, m, pos)
		}
		kind := binary.LittleEndian.Uint32(rec[4:])
		nameLen := int64(binary.LittleEndian.Uint32(rec[8:]))
		payloadLen := int64(binary.LittleEndian.Uint32(rec[12:]))
		if nameLen == 0 || nameLen > catMaxName || payloadLen > catMaxPayload {
			if salvage {
				pos, _ = damaged(pos)
				continue
			}
			return fmt.Errorf("%w: %s: absurd record lengths (%d, %d) at offset %d",
				ErrCatalogCorrupt, c.path, nameLen, payloadLen, pos)
		}
		end := pos + catRecHeaderLen + nameLen + payloadLen + catRecTrailer
		if end > size {
			if salvage {
				pos, _ = damaged(pos)
				continue
			}
			break // torn tail: body incomplete
		}
		body := make([]byte, nameLen+payloadLen+catRecTrailer)
		if _, err := c.f.ReadAt(body, pos+catRecHeaderLen); err != nil {
			return err
		}
		crc := crc32.ChecksumIEEE(rec[:])
		crc = crc32.Update(crc, crc32.IEEETable, body[:nameLen+payloadLen])
		if stored := binary.LittleEndian.Uint32(body[nameLen+payloadLen:]); crc != stored {
			if end == size && !salvage {
				// The final record's bytes are all present but the
				// checksum fails: a crash caught the append mid-write.
				// Discard it like any other torn tail.
				break
			}
			if salvage {
				pos, _ = damaged(pos)
				continue
			}
			return fmt.Errorf("%w: %s: record checksum mismatch at offset %d", ErrCatalogCorrupt, c.path, pos)
		}
		name := string(body[:nameLen])
		payload := body[nameLen : nameLen+payloadLen]
		switch kind {
		case catKindAdd:
			if payloadLen < catMetaLen {
				if salvage {
					c.salvage.RecordsDropped++
					pos = end
					continue
				}
				return fmt.Errorf("%w: %s: add record for %q has a short payload", ErrCatalogCorrupt, c.path, name)
			}
			if _, ok := c.live[name]; ok {
				if !salvage {
					return fmt.Errorf("%w: %s: duplicate add for live snapshot %q", ErrCatalogCorrupt, c.path, name)
				}
				// A duplicate add means the tombstone between the two was
				// lost to damage: the later record is the acknowledged
				// state, so replace.
				c.salvage.RecordsDropped++
			}
			c.live[name] = SnapshotRecord{
				Name:         name,
				CreatedUnix:  int64(binary.LittleEndian.Uint64(payload[0:])),
				LogicalBytes: binary.LittleEndian.Uint64(payload[8:]),
				Chunks:       binary.LittleEndian.Uint32(payload[16:]),
				SealedRecipe: append([]byte(nil), payload[catMetaLen:]...),
			}
		case catKindDelete:
			if _, ok := c.live[name]; !ok {
				if salvage {
					// The add this tombstone pairs with was lost; the
					// skip was already counted when it was dropped.
					pos = end
					continue
				}
				return fmt.Errorf("%w: %s: tombstone for unknown snapshot %q", ErrCatalogCorrupt, c.path, name)
			}
			delete(c.live, name)
			c.tombstones++
		default:
			if salvage {
				c.salvage.RecordsDropped++
				pos = end
				continue
			}
			return fmt.Errorf("%w: %s: unknown record kind %d at offset %d", ErrCatalogCorrupt, c.path, kind, pos)
		}
		pos = end
	}
	if salvage && pos < size {
		// The skipped tail is rewritten away by the compaction that
		// follows a damaged salvage open; nothing to truncate here.
		c.salvage.BytesSkipped += size - pos
		c.size = pos
		return nil
	}
	if pos < size {
		// Discard the torn tail so future appends start at a record
		// boundary.
		if err := c.f.Truncate(pos); err != nil {
			return fmt.Errorf("dedup: truncate torn catalog tail: %w", err)
		}
		if err := c.f.Sync(); err != nil {
			return err
		}
	}
	c.size = pos
	return nil
}

// resyncCatalogRecord scans forward from pos for the next catalog record
// that proves itself: magic and plausible lengths, and a verifying CRC —
// the chain is already broken, so a merely plausible header could be
// recipe bytes that happen to contain the magic.
func resyncCatalogRecord(f vfs.File, pos, size int64) (int64, bool) {
	var hdr [catRecHeaderLen]byte
	for ; pos+catRecHeaderLen <= size; pos++ {
		if _, err := f.ReadAt(hdr[:], pos); err != nil {
			return 0, false
		}
		if binary.LittleEndian.Uint32(hdr[0:]) != catRecMagic {
			continue
		}
		nameLen := int64(binary.LittleEndian.Uint32(hdr[8:]))
		payloadLen := int64(binary.LittleEndian.Uint32(hdr[12:]))
		if nameLen == 0 || nameLen > catMaxName || payloadLen > catMaxPayload {
			continue
		}
		end := pos + catRecHeaderLen + nameLen + payloadLen + catRecTrailer
		if end > size {
			continue
		}
		body := make([]byte, nameLen+payloadLen+catRecTrailer)
		if _, err := f.ReadAt(body, pos+catRecHeaderLen); err != nil {
			continue
		}
		crc := crc32.ChecksumIEEE(hdr[:])
		crc = crc32.Update(crc, crc32.IEEETable, body[:nameLen+payloadLen])
		if crc != binary.LittleEndian.Uint32(body[nameLen+payloadLen:]) {
			continue
		}
		return pos, true
	}
	return 0, false
}

// buildRecord serializes one record into c.scratch.
func (c *Catalog) buildRecord(kind uint32, name string, meta []byte, sealed []byte) []byte {
	payloadLen := len(meta) + len(sealed)
	n := catRecHeaderLen + len(name) + payloadLen + catRecTrailer
	if cap(c.scratch) < n {
		c.scratch = make([]byte, n)
	}
	buf := c.scratch[:n]
	binary.LittleEndian.PutUint32(buf[0:], catRecMagic)
	binary.LittleEndian.PutUint32(buf[4:], kind)
	binary.LittleEndian.PutUint32(buf[8:], uint32(len(name)))
	binary.LittleEndian.PutUint32(buf[12:], uint32(payloadLen))
	off := catRecHeaderLen
	off += copy(buf[off:], name)
	off += copy(buf[off:], meta)
	off += copy(buf[off:], sealed)
	binary.LittleEndian.PutUint32(buf[off:], crc32.ChecksumIEEE(buf[:off]))
	return buf
}

// appendRecordLocked writes one record at the current tail and assigns it
// the next commit sequence, without syncing — durability comes from the
// group commit that follows. Called with c.mu held.
func (c *Catalog) appendRecordLocked(buf []byte) (int64, error) {
	if err := c.gc.Err(); err != nil {
		return 0, fmt.Errorf("dedup: catalog poisoned by earlier sync failure: %w", err)
	}
	off := c.size
	if _, err := c.f.WriteAt(buf, off); err != nil {
		// The record never landed; the tail state is unchanged, so no
		// truncation is needed — just report the failure.
		return 0, fmt.Errorf("dedup: append catalog record: %w", err)
	}
	c.size = off + int64(len(buf))
	c.seq++
	c.pending = append(c.pending, catPending{seq: c.seq, off: off})
	return c.seq, nil
}

// commitRecord runs the group commit for an appended record. Called with
// c.mu released (the committer blocks; holding c.mu would serialize the
// batching it exists to provide). On success the covered pending entries
// are pruned; on failure the file is truncated back to the durable
// boundary so a later successful append does not bury unsynced garbage
// mid-file.
func (c *Catalog) commitRecord(seq int64) error {
	err := c.gc.Commit(seq)
	d := c.gc.Durable()
	c.mu.Lock()
	if err != nil {
		c.truncateToDurableLocked(d)
	} else {
		c.prunePendingLocked(d)
	}
	c.mu.Unlock()
	if err != nil {
		return fmt.Errorf("dedup: sync catalog: %w", err)
	}
	return nil
}

// prunePendingLocked drops pending entries covered by durable sequence d.
func (c *Catalog) prunePendingLocked(d int64) {
	i := 0
	for i < len(c.pending) && c.pending[i].seq <= d {
		i++
	}
	if i > 0 {
		c.pending = append(c.pending[:0], c.pending[i:]...)
	}
}

// truncateToDurableLocked discards every appended-but-unsynced record
// after a failed commit, so the file tail holds only acknowledged
// mutations. Idempotent: concurrent failed commits all compute the same
// durable boundary.
func (c *Catalog) truncateToDurableLocked(d int64) {
	c.prunePendingLocked(d)
	boundary := c.size
	if len(c.pending) > 0 {
		boundary = c.pending[0].off
	}
	c.pending = c.pending[:0]
	if boundary < c.size {
		c.size = boundary
	}
	if c.f != nil && c.f.Truncate(c.size) == nil {
		_ = c.f.Sync()
	}
}

// encodeMeta packs an add record's fixed metadata prefix.
func encodeMeta(rec SnapshotRecord) []byte {
	var meta [catMetaLen]byte
	binary.LittleEndian.PutUint64(meta[0:], uint64(rec.CreatedUnix))
	binary.LittleEndian.PutUint64(meta[8:], rec.LogicalBytes)
	binary.LittleEndian.PutUint32(meta[16:], rec.Chunks)
	return meta[:]
}

// Add records a new snapshot. When Add returns nil the snapshot is as
// durable as the catalog: for a file-backed catalog a sync covering the
// record has returned before Add does. Concurrent Adds share fsyncs via
// group commit — the mutation is applied tentatively under the lock, the
// commit runs with the lock released, and a failed commit rolls the
// mutation back.
func (c *Catalog) Add(rec SnapshotRecord) error {
	if rec.Name == "" {
		return errors.New("dedup: empty snapshot name")
	}
	if len(rec.Name) > catMaxName {
		return fmt.Errorf("dedup: snapshot name longer than %d bytes", catMaxName)
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return errors.New("dedup: catalog is closed")
	}
	if _, ok := c.live[rec.Name]; ok {
		c.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrSnapshotExists, rec.Name)
	}
	stored := rec
	stored.SealedRecipe = append([]byte(nil), rec.SealedRecipe...)
	if c.f == nil {
		c.live[rec.Name] = stored
		c.mu.Unlock()
		return nil
	}
	buf := c.buildRecord(catKindAdd, rec.Name, encodeMeta(rec), rec.SealedRecipe)
	seq, err := c.appendRecordLocked(buf)
	if err != nil {
		c.mu.Unlock()
		return err
	}
	c.live[rec.Name] = stored // tentative until the commit covers it
	c.mu.Unlock()
	if err := c.commitRecord(seq); err != nil {
		c.mu.Lock()
		delete(c.live, rec.Name)
		c.mu.Unlock()
		return err
	}
	return nil
}

// Delete removes a snapshot, appending a tombstone record. When the
// tombstones outnumber the live snapshots the catalog is compacted in the
// same call. Like Add, concurrent Deletes share fsyncs via group commit.
func (c *Catalog) Delete(name string) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return errors.New("dedup: catalog is closed")
	}
	rec, ok := c.live[name]
	if !ok {
		c.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrSnapshotNotFound, name)
	}
	if c.f == nil {
		delete(c.live, name)
		c.tombstones++
		c.mu.Unlock()
		return nil
	}
	seq, err := c.appendRecordLocked(c.buildRecord(catKindDelete, name, nil, nil))
	if err != nil {
		c.mu.Unlock()
		return err
	}
	delete(c.live, name) // tentative until the commit covers it
	c.tombstones++
	c.mu.Unlock()
	if err := c.commitRecord(seq); err != nil {
		c.mu.Lock()
		c.live[name] = rec
		c.tombstones--
		c.mu.Unlock()
		return err
	}
	c.mu.Lock()
	if c.f != nil && !c.closed && c.tombstones >= 8 && c.tombstones > len(c.live) {
		// Compaction is an optimization: the log already replays to the
		// right state, so a failed compaction only means the log stays
		// long. Do not fail the delete over it.
		_ = c.compactLocked()
	}
	c.mu.Unlock()
	return nil
}

// Get returns the live snapshot with the given name.
func (c *Catalog) Get(name string) (SnapshotRecord, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	rec, ok := c.live[name]
	return rec, ok
}

// List returns every live snapshot, sorted by name.
func (c *Catalog) List() []SnapshotRecord {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]SnapshotRecord, 0, len(c.live))
	for _, rec := range c.live {
		out = append(out, rec)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Len returns the number of live snapshots.
func (c *Catalog) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.live)
}

// Compact rewrites the catalog to hold only the live snapshots: the
// records are written to a fresh file, fsynced, and atomically renamed
// over the old one, so a crash mid-compaction leaves the previous catalog
// intact. A memory catalog compacts to a no-op.
func (c *Catalog) Compact() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.f == nil {
		c.tombstones = 0
		return nil
	}
	return c.compactLocked()
}

func (c *Catalog) compactLocked() error {
	tmpName := c.path + ".rewrite"
	tmp, err := c.fsys.OpenFile(tmpName, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("dedup: compact catalog: %w", err)
	}
	abort := func(err error) error {
		tmp.Close()
		c.fsys.Remove(tmpName)
		return err
	}
	var hdr [catHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:], catMagic)
	binary.LittleEndian.PutUint32(hdr[4:], catVersion)
	if _, err := tmp.Write(hdr[:]); err != nil {
		return abort(err)
	}
	size := int64(catHeaderLen)
	// Deterministic record order keeps compacted catalogs byte-comparable.
	names := make([]string, 0, len(c.live))
	for name := range c.live {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		rec := c.live[name]
		buf := c.buildRecord(catKindAdd, rec.Name, encodeMeta(rec), rec.SealedRecipe)
		if _, err := tmp.Write(buf); err != nil {
			return abort(err)
		}
		size += int64(len(buf))
	}
	if err := tmp.Sync(); err != nil {
		return abort(err)
	}
	if err := c.fsys.Rename(tmpName, c.path); err != nil {
		return abort(err)
	}
	// The rename is the commit point; the renamed temp handle is the new
	// catalog file. Swap the handle under syncMu so an in-flight group
	// commit never fsyncs a closed descriptor. The directory sync
	// afterwards is best-effort.
	c.syncMu.Lock()
	c.f.Close()
	c.f = tmp
	c.syncMu.Unlock()
	c.size = size
	c.tombstones = 0
	// The compacted file was synced and renamed: every record appended so
	// far — including tentative ones awaiting their group commit — is now
	// durable through the rewrite. Release their waiters without a sync.
	c.pending = c.pending[:0]
	if c.gc != nil {
		c.gc.MarkDurable(c.seq)
	}
	_ = vfs.SyncDir(c.fsys, filepath.Dir(c.path))
	return nil
}

// Close releases the catalog's file handle. Every acknowledged mutation
// is already durable; Close exists to release the descriptor.
func (c *Catalog) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	if c.f == nil {
		return nil
	}
	c.syncMu.Lock()
	err := c.f.Close()
	c.f = nil
	c.syncMu.Unlock()
	return err
}
