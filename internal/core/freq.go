// Package core implements the paper's primary contribution: frequency
// analysis inference attacks against encrypted deduplication.
//
//   - Basic attack (Algorithm 1): classical frequency analysis, matching
//     ciphertext and plaintext chunks rank-for-rank by frequency.
//   - Locality-based attack (Algorithm 2): seeds an inferred set with the
//     most frequent pairs (ciphertext-only mode) or leaked pairs
//     (known-plaintext mode), then iteratively infers neighbors through
//     left/right co-occurrence frequency analysis, exploiting chunk
//     locality in backup streams.
//   - Advanced locality-based attack (Algorithm 3): augments every
//     frequency-analysis step with chunk-size classification (sizes in
//     16-byte cipher blocks), for variable-size chunks.
//
// The attacks operate on trace.Backup streams: C, the ciphertext chunk
// sequence of the latest backup, and M, the plaintext chunk sequence of a
// prior backup (the auxiliary information). Severity is quantified by the
// inference rate: correctly inferred unique ciphertext chunks over total
// unique ciphertext chunks in the latest backup.
//
// # Tie-breaking
//
// The paper notes that how frequency ties are broken affects inference
// results (Section 4.1). This implementation uses two tie orders:
//
//   - Whole-stream frequency tables (the basic attack and the
//     locality-based attack's seeding) break ties by fingerprint value —
//     effectively arbitrary, as in the paper, whose basic attack is
//     crippled by exactly these ties.
//   - Per-neighbor co-occurrence tables (the locality-based attack's
//     iteration) break ties by the first stream position of the
//     co-occurrence — information the adversary observes directly (it
//     taps uploads in logical order, Section 3.3). Within one chunk's
//     small neighbor set, co-occurrence order is preserved across backup
//     versions wherever the surrounding layout is, so position is a
//     strong, locality-justified alignment signal; breaking these ties
//     arbitrarily would discard exploitable structure and understate the
//     attack.
package core

import (
	"sort"

	"freqdedup/internal/fphash"
	"freqdedup/internal/trace"
)

// Pair is one inferred ciphertext-plaintext chunk pair (C, M).
type Pair struct {
	C fphash.Fingerprint // ciphertext chunk of the latest backup
	M fphash.Fingerprint // inferred original plaintext chunk
}

// stat is one chunk's (or neighbor pair's) frequency record: its occurrence
// count and the stream position of its first occurrence (for tie-breaking).
type stat struct {
	count int
	first int
}

// counts is an associative array from fingerprint to frequency — F_C / F_M
// of the paper, or one neighbor-table row L_X[X] / R_X[X].
type counts map[fphash.Fingerprint]*stat

// bump increments the count for fp, recording position pos on first sight.
func (c counts) bump(fp fphash.Fingerprint, pos int) {
	if s, ok := c[fp]; ok {
		s.count++
		return
	}
	c[fp] = &stat{count: 1, first: pos}
}

// neighborTable maps each chunk to the co-occurrence counts of its left (or
// right) neighbors — L_X / R_X of the paper.
type neighborTable map[fphash.Fingerprint]counts

// countStream builds F, L, and R for a backup stream (the COUNT function of
// Algorithm 2): chunk frequencies plus left/right neighbor co-occurrence
// frequencies.
func countStream(b *trace.Backup) (f counts, l, r neighborTable) {
	f = make(counts, len(b.Chunks))
	l = make(neighborTable, len(b.Chunks))
	r = make(neighborTable, len(b.Chunks))
	for i, c := range b.Chunks {
		f.bump(c.FP, i)
		if i > 0 {
			left := b.Chunks[i-1].FP
			lc := l[c.FP]
			if lc == nil {
				lc = make(counts)
				l[c.FP] = lc
			}
			lc.bump(left, i)
			rc := r[left]
			if rc == nil {
				rc = make(counts)
				r[left] = rc
			}
			rc.bump(c.FP, i)
		}
	}
	return f, l, r
}

// freqEntry is one chunk with its frequency record (and size, for the
// advanced attack's classification).
type freqEntry struct {
	fp   fphash.Fingerprint
	stat stat
	size uint32
}

// rankLess orders entries by descending frequency. When posTies is set,
// ties break by first stream occurrence (neighbor-table analyses);
// otherwise by fingerprint (whole-stream analyses — arbitrary, as in the
// paper). Fingerprint order is the final key either way, for determinism.
func rankLess(a, b freqEntry, posTies bool) bool {
	if a.stat.count != b.stat.count {
		return a.stat.count > b.stat.count
	}
	if posTies && a.stat.first != b.stat.first {
		return a.stat.first < b.stat.first
	}
	return a.fp.Less(b.fp)
}

// rank sorts a frequency table into matching order.
func rank(f counts, sizes map[fphash.Fingerprint]uint32, posTies bool) []freqEntry {
	out := make([]freqEntry, 0, len(f))
	for fp, s := range f {
		out = append(out, freqEntry{fp: fp, stat: *s, size: sizes[fp]})
	}
	sort.Slice(out, func(i, j int) bool { return rankLess(out[i], out[j], posTies) })
	return out
}

// freqAnalysis pairs the i-th most frequent ciphertext chunk with the i-th
// most frequent plaintext chunk, returning at most x pairs (x <= 0 means
// unbounded) — the FREQ-ANALYSIS function of Algorithms 1 and 2.
func freqAnalysis(fc, fm counts, x int, cSizes, mSizes map[fphash.Fingerprint]uint32, sizeAware, posTies bool) []Pair {
	if sizeAware {
		return freqAnalysisBySize(fc, fm, x, cSizes, mSizes, posTies)
	}
	rc := rank(fc, cSizes, posTies)
	rm := rank(fm, mSizes, posTies)
	n := len(rc)
	if len(rm) < n {
		n = len(rm)
	}
	if x > 0 && x < n {
		n = x
	}
	pairs := make([]Pair, n)
	for i := 0; i < n; i++ {
		pairs[i] = Pair{C: rc[i].fp, M: rm[i].fp}
	}
	return pairs
}

// blocks returns the chunk size in 16-byte cipher blocks, ceil(size/16)
// (Algorithm 3's CLASSIFY step; AES block size is 16 bytes).
func blocks(size uint32) uint32 {
	return (size + 15) / 16
}

// freqAnalysisBySize is the advanced attack's frequency analysis
// (Algorithm 3): chunks are first classified by size in cipher blocks, and
// rank matching happens within each size class, returning up to x pairs per
// class.
func freqAnalysisBySize(fc, fm counts, x int, cSizes, mSizes map[fphash.Fingerprint]uint32, posTies bool) []Pair {
	classify := func(f counts, sizes map[fphash.Fingerprint]uint32) map[uint32][]freqEntry {
		by := make(map[uint32][]freqEntry)
		for fp, s := range f {
			cls := blocks(sizes[fp])
			by[cls] = append(by[cls], freqEntry{fp: fp, stat: *s, size: sizes[fp]})
		}
		for _, list := range by {
			sort.Slice(list, func(i, j int) bool { return rankLess(list[i], list[j], posTies) })
		}
		return by
	}
	bc := classify(fc, cSizes)
	bm := classify(fm, mSizes)

	// Deterministic class order.
	classes := make([]uint32, 0, len(bc))
	for s := range bc {
		if _, ok := bm[s]; ok {
			classes = append(classes, s)
		}
	}
	sort.Slice(classes, func(i, j int) bool { return classes[i] < classes[j] })

	var pairs []Pair
	for _, s := range classes {
		rc, rm := bc[s], bm[s]
		n := len(rc)
		if len(rm) < n {
			n = len(rm)
		}
		if x > 0 && x < n {
			n = x
		}
		for i := 0; i < n; i++ {
			pairs = append(pairs, Pair{C: rc[i].fp, M: rm[i].fp})
		}
	}
	return pairs
}
