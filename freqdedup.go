// Package freqdedup reproduces "Information Leakage in Encrypted
// Deduplication via Frequency Analysis" (Li, Qin, Lee, Zhang — DSN 2017;
// extended TR arXiv:1904.05736): frequency-analysis inference attacks
// against encrypted deduplication, the MinHash-encryption and scrambling
// defenses, and every substrate they run on — content-defined chunking,
// message-locked encryption, a DupLESS-style key manager, a deduplicating
// store, and a DDFS-like metadata pipeline.
//
// This package is the public facade: it re-exports the stable API from the
// internal packages so downstream users have a single import. The building
// blocks:
//
//   - Repository: the system front door. CreateRepository and
//     OpenRepository give a durable, snapshot-granular encrypted dedup
//     store — Backup/Restore/Snapshots/Delete/GC/Verify with a crash-safe
//     snapshot catalog and context-aware (cancellable) pipelines. Start
//     here; the lower-level Store/Client pair remains for research rigs
//     that need to wire the stages by hand.
//   - Attacks: BasicAttack, LocalityAttack (with LocalityConfig;
//     SizeAware selects the advanced variant), scored by InferenceRate.
//   - Defenses: EncryptMLE / EncryptMinHash / scheme-driven Encrypt, plus
//     StorageSavings for the efficiency evaluation.
//   - Workloads: Dataset / Backup and the three generators
//     (GenerateFSL, GenerateSynthetic, GenerateVM).
//   - Byte-level pipeline: the Store / Client pair backing Repository;
//     NewKeyServer / DialKeyManager provide server-aided MLE over TCP.
//   - Experiments: the eval runners regenerate each of the paper's
//     figures (see package internal/eval via the Fig* wrappers).
//
// See the runnable programs under examples/ for end-to-end usage.
package freqdedup

import (
	"freqdedup/internal/attack"
	"freqdedup/internal/chunker"
	"freqdedup/internal/container"
	"freqdedup/internal/core"
	"freqdedup/internal/dedup"
	"freqdedup/internal/defense"
	"freqdedup/internal/eval"
	"freqdedup/internal/fphash"
	"freqdedup/internal/keymgr"
	"freqdedup/internal/mle"
	"freqdedup/internal/trace"
)

// Fingerprint identifies a chunk by content.
type Fingerprint = fphash.Fingerprint

// FingerprintOf computes the fingerprint of chunk content.
func FingerprintOf(content []byte) Fingerprint { return fphash.FromBytes(content) }

// Chunking.
type (
	// Chunk is one chunk cut from an input stream. Chunk buffers come from
	// a pool; streaming consumers should call Chunk.Release when done with
	// a chunk's bytes (see internal/chunker's package documentation for
	// the ownership contract).
	Chunk = chunker.Chunk
	// Chunker cuts a stream into chunks.
	Chunker = chunker.Chunker
	// ChunkingParams configures content-defined chunking, including
	// DeferFingerprint for pipelines that hash chunk contents out of band
	// and Algorithm to select the boundary function.
	ChunkingParams = chunker.Params
	// ChunkAlgorithm selects a content-defined chunker's boundary
	// function: AlgoRabin or AlgoGear. The two are distinct formats —
	// their cut points differ, so data chunked with one does not
	// deduplicate against data chunked with the other.
	ChunkAlgorithm = chunker.Algorithm
)

// Chunking algorithms.
const (
	// AlgoRabin cuts with the rolling Rabin fingerprint — the original
	// freqdedup format and the default.
	AlgoRabin = chunker.AlgoRabin
	// AlgoGear cuts with a gear hash (FastCDC-style), roughly 3x the
	// rolling speed of Rabin. A new format: NOT cut-point compatible with
	// AlgoRabin.
	AlgoGear = chunker.AlgoGear
)

// NewFixedChunker returns a fixed-size chunker (the paper's VM dataset
// uses 4 KB fixed chunks).
var NewFixedChunker = chunker.NewFixed

// NewContentDefinedChunker returns a Rabin-fingerprint content-defined
// chunker (the paper's FSL and synthetic datasets use 8 KB average).
var NewContentDefinedChunker = chunker.NewContentDefined

// NewChunker returns the content-defined chunker selected by
// ChunkingParams.Algorithm.
var NewChunker = chunker.New

// NewGearChunker returns a gear-hash content-defined chunker (AlgoGear's
// concrete type).
var NewGearChunker = chunker.NewGear

// NewMultiGearChunker returns a multi-stream gear chunker: the input is
// split across worker goroutines (0 selects GOMAXPROCS) and the cut
// points are stitched deterministically, emitting the exact serial
// AlgoGear chunk sequence at any worker count. Requires Min >= 64; call
// Close when abandoning the stream before EOF.
var NewMultiGearChunker = chunker.NewMultiGear

// DefaultChunkingParams mirrors the paper's FSL chunking configuration.
var DefaultChunkingParams = chunker.DefaultParams

// Encryption.
type (
	// Key is a chunk encryption key.
	Key = mle.Key
	// KeyDeriver derives chunk keys from fingerprints (implemented by the
	// key-manager client and by NewLocalDeriver).
	KeyDeriver = mle.KeyDeriver
	// Recipe is a file's combined file/key recipe.
	Recipe = mle.Recipe
)

// ConvergentKey derives the convergent-encryption key of a chunk.
var ConvergentKey = mle.ConvergentKey

// EncryptDeterministic encrypts with AES-256-CTR under a key-derived IV:
// identical (key, plaintext) pairs give identical ciphertexts, the MLE
// property deduplication requires and frequency analysis exploits.
var EncryptDeterministic = mle.EncryptDeterministic

// DecryptDeterministic inverts EncryptDeterministic.
var DecryptDeterministic = mle.DecryptDeterministic

// NewLocalDeriver derives keys locally from a system-wide secret.
var NewLocalDeriver = mle.NewLocalDeriver

// NewServerAidedMLE returns the DupLESS-style encryption scheme.
var NewServerAidedMLE = mle.NewServerAided

// NewMinHashEncryption returns the MinHash encryption scheme (Algorithm 4).
var NewMinHashEncryption = mle.NewMinHash

// OpenRecipe decrypts and decodes a recipe sealed with Recipe.Seal.
var OpenRecipe = mle.OpenRecipe

// BruteForce mounts the offline brute-force attack against convergent
// encryption on a predictable candidate set (Section 2.2).
var BruteForce = mle.BruteForce

// Key manager (server-aided MLE over TCP).
type (
	// KeyServerConfig configures a key manager server.
	KeyServerConfig = keymgr.ServerConfig
	// KeyServer is the DupLESS-style key manager.
	KeyServer = keymgr.Server
	// KeyClient talks to a key manager and implements KeyDeriver.
	KeyClient = keymgr.Client
)

// NewKeyServer constructs a key manager server.
var NewKeyServer = keymgr.NewServer

// DialKeyManager connects and authenticates to a key manager.
var DialKeyManager = keymgr.Dial

// NewTokenBucket builds the rate limiter used to slow online brute force.
var NewTokenBucket = keymgr.NewTokenBucket

// ErrRateLimited is returned by the key-manager client when the server
// throttles a key request.
var ErrRateLimited = keymgr.ErrRateLimited

// Deduplicated storage (byte-level pipeline of Figure 2).
type (
	// Store is a deduplicated ciphertext-chunk store, lock-striped into
	// shards keyed by fingerprint prefix so concurrent clients rarely
	// contend. It is safe for concurrent use.
	Store = dedup.Store
	// StoreChunk is one chunk of a batched Store.PutBatch upload (or a
	// Store.PutBatchOwned ownership-transfer upload).
	StoreChunk = dedup.PutChunk
	// Client chunks, encrypts, and uploads backup streams through a
	// bounded streaming pipeline: a producer goroutine runs the
	// content-defined chunker while ClientConfig.Workers goroutines
	// encrypt and fingerprint, so resident plaintext stays bounded
	// regardless of stream length. A Client is not safe for concurrent
	// use; run one per goroutine against a shared Store.
	Client = dedup.Client
	// ClientConfig configures a Client (chunking, MLE scheme, defenses,
	// and the backup pipeline's worker count).
	ClientConfig = dedup.Config
)

// Client encryption pipeline selectors.
const (
	// EncConvergent encrypts each chunk under its content hash.
	EncConvergent = dedup.EncConvergent
	// EncServerAided derives per-chunk keys from a key manager.
	EncServerAided = dedup.EncServerAided
	// EncMinHash derives one key per segment from the segment's minimum
	// fingerprint (Algorithm 4).
	EncMinHash = dedup.EncMinHash
)

// DefaultStoreShards is the shard count NewStore uses.
const DefaultStoreShards = dedup.DefaultShards

// NewStore returns an empty deduplicated store with DefaultStoreShards
// index shards.
//
// Deprecated: use CreateRepository(""). The Repository front door adds a
// durable snapshot catalog, context-aware pipelines, and Verify; the raw
// Store keeps retention state only in memory.
var NewStore = dedup.NewStore

// NewStoreWithShards returns an empty deduplicated store with an explicit
// shard count in [1, 256]. Shard count 1 reproduces the serial engine's
// container layout bit for bit; dedup statistics are identical for every
// shard count.
//
// Deprecated: use CreateRepository("", WithShards(n)).
var NewStoreWithShards = dedup.NewStoreWithShards

// Persistence: sealed containers live behind a pluggable storage backend
// (see internal/container's package documentation for the on-disk
// format). The seal is the durability boundary; Store.Close seals open
// containers on shutdown.
type (
	// StoreBackend is pluggable persistent storage for sealed containers.
	StoreBackend = container.Backend
	// MemBackend keeps sealed containers in memory (the default backend).
	MemBackend = container.MemBackend
	// FileBackend persists sealed containers in per-shard append-only
	// files with crash-safe seals and atomic GC rewrites.
	FileBackend = container.FileBackend
)

// NewMemStoreBackend returns an in-memory StoreBackend with the given
// shard count — for Repository's WithBackend and NewStoreWithBackend.
var NewMemStoreBackend = container.NewMemBackend

// CreateFileStoreBackend initializes a new file-backed StoreBackend
// directory with the given shard count and container capacity.
var CreateFileStoreBackend = container.CreateFileBackend

// OpenFileStoreBackend reopens a directory created by
// CreateFileStoreBackend, validating structure and recovering from a
// crash-torn tail.
var OpenFileStoreBackend = container.OpenFileBackend

// NewStoreWithBackend returns a store persisting sealed containers
// through the given backend, rebuilding the fingerprint index if the
// backend already holds containers.
//
// Deprecated: use CreateRepository / OpenRepository with WithBackend.
var NewStoreWithBackend = dedup.NewStoreWithBackend

// CreateStore initializes a new file-backed store directory.
//
// Deprecated: use CreateRepository — it adds the snapshot catalog beside
// the container shards, which is what makes GC after a reopen safe.
var CreateStore = dedup.Create

// OpenStore reopens a file-backed store directory created by CreateStore,
// rebuilding the fingerprint index from container index headers. Note
// that a reopened raw store has no retention state: GC before
// re-registering every backup reclaims everything.
//
// Deprecated: use OpenRepository, which replays the snapshot catalog and
// restores the reference counts.
var OpenStore = dedup.Open

// ErrChunkNotFound is returned by Store.Get for unknown fingerprints.
var ErrChunkNotFound = dedup.ErrNotFound

// ErrStoreCorrupt is wrapped by reads of a damaged store file: data
// corruption surfaces as an error, never as silent wrong bytes.
var ErrStoreCorrupt = container.ErrCorrupt

// NewClient returns a backup/restore client for a store. Restores run as
// a parallel container pipeline (ClientConfig.Workers fetch+decrypt
// goroutines over a ClientConfig.RestoreCacheContainers-bounded LRU
// container cache) whose output is bit-for-bit identical to a serial
// restore at every setting.
//
// Deprecated: use Repository.Backup and Repository.Restore, which manage
// recipes, sealing, and retention for you and accept a context.
var NewClient = dedup.NewClient

// GCStats reports what a garbage-collection pass reclaimed.
type GCStats = dedup.GCStats

// Workload model and generators (Section 5.1).
type (
	// Backup is one full backup's chunk stream in logical order.
	Backup = trace.Backup
	// ChunkRef is one chunk occurrence (fingerprint and size).
	ChunkRef = trace.ChunkRef
	// Dataset is a series of backups of the same primary data.
	Dataset = trace.Dataset
)

// Dataset generators and their parameter types.
var (
	GenerateFSL            = trace.GenerateFSL
	GenerateSynthetic      = trace.GenerateSynthetic
	GenerateVM             = trace.GenerateVM
	DefaultFSLParams       = trace.DefaultFSLParams
	DefaultSyntheticParams = trace.DefaultSyntheticParams
	DefaultVMParams        = trace.DefaultVMParams
	ReadDataset            = trace.Read
	WriteDataset           = trace.Write
)

// Attacks (Section 4). The streaming engine (internal/attack) is the
// primary implementation: pluggable Attack values consuming replayable
// AttackSource streams through sharded, parallel, two-pass counters, so
// the same attacks run on in-memory generator traces and on repository
// trace logs far larger than RAM, with results bit-identical at every
// shard and worker count.
type (
	// Pair is one inferred ciphertext-plaintext chunk pair.
	Pair = attack.Pair
	// LocalityConfig parameterizes the attacks (it is the streaming
	// engine's Config; the legacy name is kept for compatibility).
	LocalityConfig = attack.Config
	// AttackConfig is LocalityConfig under the streaming engine's name.
	AttackConfig = attack.Config
	// GroundTruth maps ciphertext to true plaintext fingerprints.
	GroundTruth = attack.GroundTruth
	// AttackMode selects ciphertext-only or known-plaintext seeding.
	AttackMode = attack.Mode
	// Attack is one pluggable inference attack (basic / locality /
	// advanced x ciphertext-only / known-plaintext).
	Attack = attack.Attack
	// AttackParams sets the engine's table sharding and counting fan-out.
	AttackParams = attack.Params
	// AttackResult is one attack run's inferred pairs, stats, and
	// inference-rate denominator.
	AttackResult = attack.Result
	// AttackSource is a replayable chunk stream an attack consumes.
	AttackSource = attack.ChunkSource
	// AttackChunkReader is one open read pass over an AttackSource.
	AttackChunkReader = attack.ChunkReader
)

// Attack modes.
const (
	// CiphertextOnly seeds the attack from frequency ranks alone.
	CiphertextOnly = attack.CiphertextOnly
	// KnownPlaintext seeds the attack with leaked plaintext pairs.
	KnownPlaintext = attack.KnownPlaintext
)

// AttackStats reports the internals of one locality-attack run.
type AttackStats = attack.Stats

// Streaming attack engine entry points.
var (
	// NewBasicAttack / NewLocalityAttack / NewAdvancedAttack construct
	// the three attacks; AttackSuite returns all three for one config.
	NewBasicAttack    = attack.NewBasic
	NewLocalityAttack = attack.NewLocality
	NewAdvancedAttack = attack.NewAdvanced
	AttackSuite       = attack.Suite
	// BackupAttackSource adapts an in-memory backup stream; repository
	// trace logs implement AttackSource directly (see TapBackup).
	BackupAttackSource = attack.BackupSource
	SampleLeaked       = attack.SampleLeaked
)

// Legacy materialized-slice attack entry points.
//
// Deprecated: use the streaming engine (NewBasicAttack /
// NewLocalityAttack / NewAdvancedAttack with BackupAttackSource) — its
// results are proven bit-identical and it also runs on repository trace
// logs. These remain for compatibility and as the golden reference.
var (
	BasicAttack             = core.BasicAttack
	LocalityAttack          = core.LocalityAttack
	LocalityAttackWithStats = core.LocalityAttackWithStats
	DefaultLocalityConfig   = core.DefaultLocalityConfig
	InferenceRate           = core.InferenceRate
)

// Defenses (Section 6), simulated at trace level as in Section 7.1.
type (
	// Encrypted is a ciphertext stream plus ground truth.
	Encrypted = defense.Encrypted
	// DefenseScheme selects MLE, MinHash, or the combined scheme.
	DefenseScheme = defense.Scheme
	// DefenseOptions configures segmentation and scrambling.
	DefenseOptions = defense.Options
)

// Defense schemes.
const (
	// SchemeMLE is the undefended exact-dedup MLE baseline.
	SchemeMLE = defense.SchemeMLE
	// SchemeMinHash is MinHash encryption alone (Algorithm 4).
	SchemeMinHash = defense.SchemeMinHash
	// SchemeCombined is MinHash encryption plus segment scrambling.
	SchemeCombined = defense.SchemeCombined
)

// Defense entry points.
var (
	EncryptMLE            = defense.EncryptMLE
	EncryptMinHash        = defense.EncryptMinHash
	EncryptWithScheme     = defense.Encrypt
	StorageSavings        = defense.StorageSavings
	DefaultDefenseOptions = defense.DefaultOptions
)

// Experiments: the per-figure runners of the paper's evaluation.
type (
	// Figure is one reproduced table/figure.
	Figure = eval.Figure
	// EvalDatasets bundles the three evaluation datasets.
	EvalDatasets = eval.Datasets
)

// Figure runners (Sections 5 and 7), the Section 6.2 restore-locality
// check, and the ablations (DESIGN.md).
var (
	GenerateEvalDatasets      = eval.Generate
	Fig1                      = eval.Fig1FrequencyDistribution
	Fig4                      = eval.Fig4ParamSweep
	Fig5                      = eval.Fig5VaryAux
	Fig6                      = eval.Fig6VaryTarget
	Fig7                      = eval.Fig7SlidingWindow
	Fig8                      = eval.Fig8KnownPlaintext
	Fig9                      = eval.Fig9KPVaryAux
	Fig10                     = eval.Fig10Defense
	Fig11                     = eval.Fig11StorageSaving
	Fig13                     = eval.Fig13Metadata512
	Fig14                     = eval.Fig14Metadata4G
	RestoreLocality           = eval.RestoreLocality
	AblationDefenseComponents = eval.AblationDefenseComponents
	AblationSegmentSize       = eval.AblationSegmentSize
	AblationTieBreaking       = eval.AblationTieBreaking
)
