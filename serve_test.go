package freqdedup

// End-to-end acceptance of the multi-tenant server: concurrent network
// tenants over one shared repository produce exactly the store a serial
// in-process run produces; a server killed mid-session keeps every
// acknowledged snapshot and loses every unacknowledged one; and the
// negotiation transcript alone reproduces the paper's attack ordering
// beside the upload-tap baseline.

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"freqdedup/internal/attack"
	"freqdedup/internal/defense"
	"freqdedup/internal/faultio"
	"freqdedup/internal/fphash"
	"freqdedup/internal/mle"
	"freqdedup/internal/trace"
	"freqdedup/internal/tracelog"
	"freqdedup/internal/wire"
)

// startRepoServer wraps repo in a RepoServer on a loopback listener.
func startRepoServer(t *testing.T, repo *Repository, cfg ServerConfig) (*RepoServer, string) {
	t.Helper()
	rs, err := NewRepositoryServer(repo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := rs.Serve(ln); err != nil {
			t.Errorf("Serve: %v", err)
		}
	}()
	t.Cleanup(func() {
		rs.Close()
		<-done
	})
	return rs, ln.Addr().String()
}

// TestServerConcurrentTenantsMatchSerial is the tentpole acceptance: N
// concurrent loopback tenants backing up overlapping workload generations
// must leave the shared repository logically identical to a serial
// in-process run of the same streams — same snapshot set, byte-identical
// restores, identical per-tenant chunk accounting — and everything must
// survive a close-and-reopen.
func TestServerConcurrentTenantsMatchSerial(t *testing.T) {
	const tenants = 4
	ctx := context.Background()

	ds, err := GenerateWorkload("fileserver", WorkloadConfig{Seed: 5, Backups: 3, TotalBytes: 4 << 20})
	if err != nil {
		t.Fatal(err)
	}
	gens := make([][]byte, len(ds.Backups))
	for i := range ds.Backups {
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(WorkloadDataReader(ds.Backups[i])); err != nil {
			t.Fatal(err)
		}
		gens[i] = buf.Bytes()
	}

	var key Key
	copy(key[:], "concurrent tenants test key")
	dir := t.TempDir()
	repo, err := CreateRepository(dir, WithRepositoryKey(key))
	if err != nil {
		t.Fatal(err)
	}
	_, addr := startRepoServer(t, repo, ServerConfig{})

	var wg sync.WaitGroup
	errs := make([]error, tenants)
	for i := 0; i < tenants; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := DialServer(addr, RemoteClientConfig{Tenant: fmt.Sprintf("t%d", i)})
			if err != nil {
				errs[i] = err
				return
			}
			defer c.Close()
			for j, g := range gens {
				if _, err := c.Backup(ctx, fmt.Sprintf("gen-%d", j), bytes.NewReader(g)); err != nil {
					errs[i] = fmt.Errorf("gen %d: %w", j, err)
					return
				}
			}
			// Each tenant restores its latest generation over the wire.
			var got bytes.Buffer
			if err := c.Restore(ctx, fmt.Sprintf("gen-%d", len(gens)-1), &got); err != nil {
				errs[i] = err
				return
			}
			if !bytes.Equal(got.Bytes(), gens[len(gens)-1]) {
				errs[i] = fmt.Errorf("remote restore bytes differ")
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("tenant %d: %v", i, err)
		}
	}

	// Serial in-process reference: the same streams, same qualified
	// names, one at a time.
	refDir := t.TempDir()
	ref, err := CreateRepository(refDir, WithRepositoryKey(key))
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	for i := 0; i < tenants; i++ {
		for j, g := range gens {
			if _, err := ref.Backup(ctx, fmt.Sprintf("t%d/gen-%d", i, j), bytes.NewReader(g)); err != nil {
				t.Fatal(err)
			}
		}
	}

	compare := func(r *Repository) {
		t.Helper()
		snaps := r.Snapshots()
		refSnaps := ref.Snapshots()
		if len(snaps) != len(refSnaps) {
			t.Fatalf("%d snapshots, serial reference has %d", len(snaps), len(refSnaps))
		}
		for i := range snaps {
			if snaps[i].Name != refSnaps[i].Name ||
				snaps[i].LogicalBytes != refSnaps[i].LogicalBytes ||
				snaps[i].Chunks != refSnaps[i].Chunks {
				t.Fatalf("snapshot %d: %+v vs serial %+v", i, snaps[i], refSnaps[i])
			}
		}
		// The per-tenant accounting is recipe-derived — identical chunk
		// sets must give identical exclusive/shared splits regardless of
		// upload interleaving.
		stats, err := r.TenantStats()
		if err != nil {
			t.Fatal(err)
		}
		refStats, err := ref.TenantStats()
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprintf("%+v", stats) != fmt.Sprintf("%+v", refStats) {
			t.Fatalf("tenant stats diverge:\n  server: %+v\n  serial: %+v", stats, refStats)
		}
		if err := r.Verify(ctx); err != nil {
			t.Fatalf("verify: %v", err)
		}
		for i := 0; i < tenants; i++ {
			for j, g := range gens {
				mustRestore(t, r, fmt.Sprintf("t%d/gen-%d", i, j), g)
			}
		}
	}
	compare(repo)

	// Full overlap across tenants: everything after tenant 0 dedups, so
	// each tenant's footprint is entirely shared and the store holds one
	// tenant's worth of unique bytes.
	stats, err := repo.TenantStats()
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != tenants {
		t.Fatalf("%d tenant rows, want %d", len(stats), tenants)
	}
	for _, u := range stats {
		if u.ExclusiveChunks != 0 || u.SharedChunks == 0 {
			t.Fatalf("fully-overlapping tenant %q: %+v", u.Tenant, u)
		}
	}

	// Acked ⇒ durable: reopen cold and compare again.
	if err := repo.Close(); err != nil {
		t.Fatal(err)
	}
	reopened, err := OpenRepository(dir, WithRepositoryKey(key))
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	compare(reopened)
}

// TestServerKillMidSessionDurability: a server killed with a session
// mid-flight keeps every acknowledged snapshot restorable and loses the
// unacknowledged one — and the negotiation transcript of the committed
// session survives the crash.
func TestServerKillMidSessionDurability(t *testing.T) {
	m := faultio.NewMemFS()
	var key Key
	copy(key[:], "kill mid session key")
	repo, err := CreateRepository("repo", WithFileSystem(m), WithRepositoryKey(key))
	if err != nil {
		t.Fatal(err)
	}
	rs, addr := startRepoServer(t, repo, ServerConfig{})
	ctx := context.Background()

	// Alice completes a backup: acknowledged, so it must survive.
	alice, err := DialServer(addr, RemoteClientConfig{Tenant: "alice"})
	if err != nil {
		t.Fatal(err)
	}
	defer alice.Close()
	dataA := repoData(31, 2<<20)
	if _, err := alice.Backup(ctx, "ok", bytes.NewReader(dataA)); err != nil {
		t.Fatal(err)
	}

	// Bob's session negotiates and uploads but never commits: the raw
	// wire dance a well-behaved client cannot express.
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	nc.SetDeadline(time.Now().Add(10 * time.Second))
	wc := wire.NewConn(nc)
	hello, err := wire.AppendHello(nil, wire.Hello{Version: wire.Version, Tenant: "bob"})
	if err != nil {
		t.Fatal(err)
	}
	if err := wc.Send(wire.THello, hello); err != nil {
		t.Fatal(err)
	}
	if typ, _, err := wc.Recv(); err != nil || typ != wire.THelloOK {
		t.Fatalf("handshake: typ %d err %v", typ, err)
	}
	name, err := wire.AppendName(nil, "unacked")
	if err != nil {
		t.Fatal(err)
	}
	if err := wc.Send(wire.TBackupBegin, name); err != nil {
		t.Fatal(err)
	}
	if typ, _, err := wc.Recv(); err != nil || typ != wire.TBackupReady {
		t.Fatalf("begin: typ %d err %v", typ, err)
	}
	chunk := repoData(32, 64<<10)
	ct := EncryptDeterministic(ConvergentKey(chunk), chunk)
	ref := trace.ChunkRef{FP: fphash.FromBytes(ct), Size: uint32(len(ct))}
	if err := wc.Send(wire.TNegotiate, wire.AppendNegotiate(nil, 0, []trace.ChunkRef{ref})); err != nil {
		t.Fatal(err)
	}
	if typ, _, err := wc.Recv(); err != nil || typ != wire.TNegotiateReply {
		t.Fatalf("negotiate: typ %d err %v", typ, err)
	}
	if err := wc.Send(wire.TChunkData, wire.AppendChunkData(nil, 0, [][]byte{ct})); err != nil {
		t.Fatal(err)
	}
	if typ, _, err := wc.Recv(); err != nil || typ != wire.TWindowAck {
		t.Fatalf("ack: typ %d err %v", typ, err)
	}

	// Kill: snapshot the filesystem as a crash would leave it, with Bob's
	// session still open and unacknowledged.
	img := m.CrashImage()
	rs.Close()
	repo.Close()

	reopened, err := OpenRepository("repo", WithFileSystem(img), WithRepositoryKey(key))
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	snaps := reopened.Snapshots()
	if len(snaps) != 1 || snaps[0].Name != "alice/ok" {
		t.Fatalf("snapshots after crash = %+v, want exactly alice/ok", snaps)
	}
	mustRestore(t, reopened, "alice/ok", dataA)
	if err := reopened.Verify(context.Background()); err != nil {
		t.Fatalf("verify after crash: %v", err)
	}

	// The committed session's negotiation transcript survives the crash;
	// Bob's uncommitted streams do not.
	neg, err := tracelog.OpenReadOnlyFS(img, "repo/"+NegotiationLogName)
	if err != nil {
		t.Fatal(err)
	}
	defer neg.Close()
	labels := make(map[string]bool)
	for _, b := range neg.Backups() {
		labels[b.Label] = true
	}
	if !labels["alice/ok"] || !labels["alice/ok"+NegotiationMissSuffix] {
		t.Fatalf("negotiation transcript lost the committed session: %v", labels)
	}
	for l := range labels {
		if strings.HasPrefix(l, "bob/") {
			t.Fatalf("uncommitted session leaked into the transcript: %q", l)
		}
	}
}

// TestServerAbortCommitsNegotiationTranscript: a session the client
// abandons leaves no snapshot but does leave its negotiation transcript —
// the wire adversary saw those rounds regardless.
func TestServerAbortCommitsNegotiationTranscript(t *testing.T) {
	repo, err := CreateRepository("")
	if err != nil {
		t.Fatal(err)
	}
	defer repo.Close()
	rs, addr := startRepoServer(t, repo, ServerConfig{})

	// Raw wire session: handshake, begin, one negotiation round, then
	// vanish without committing.
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	nc.SetDeadline(time.Now().Add(10 * time.Second))
	wc := wire.NewConn(nc)
	hello, err := wire.AppendHello(nil, wire.Hello{Version: wire.Version, Tenant: "alice"})
	if err != nil {
		t.Fatal(err)
	}
	if err := wc.Send(wire.THello, hello); err != nil {
		t.Fatal(err)
	}
	if typ, _, err := wc.Recv(); err != nil || typ != wire.THelloOK {
		t.Fatalf("handshake: typ %d err %v", typ, err)
	}
	name, err := wire.AppendName(nil, "doomed")
	if err != nil {
		t.Fatal(err)
	}
	if err := wc.Send(wire.TBackupBegin, name); err != nil {
		t.Fatal(err)
	}
	if typ, _, err := wc.Recv(); err != nil || typ != wire.TBackupReady {
		t.Fatalf("begin: typ %d err %v", typ, err)
	}
	chunk := repoData(77, 64<<10)
	ct := EncryptDeterministic(ConvergentKey(chunk), chunk)
	ref := trace.ChunkRef{FP: fphash.FromBytes(ct), Size: uint32(len(ct))}
	if err := wc.Send(wire.TNegotiate, wire.AppendNegotiate(nil, 0, []trace.ChunkRef{ref})); err != nil {
		t.Fatal(err)
	}
	if typ, _, err := wc.Recv(); err != nil || typ != wire.TNegotiateReply {
		t.Fatalf("negotiate: typ %d err %v", typ, err)
	}
	nc.Close() // abandon mid-session

	// Drain: the disconnected session's handler aborts and finishes
	// before Shutdown returns.
	sctx, scancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer scancel()
	if err := rs.Shutdown(sctx); err != nil {
		t.Fatal(err)
	}
	if n := len(repo.Snapshots()); n != 0 {
		t.Fatalf("aborted session registered %d snapshots", n)
	}
	var sawQuery bool
	for _, b := range rs.NegotiationLog().Backups() {
		if b.Label == "alice/doomed" {
			sawQuery = true
		}
	}
	if !sawQuery {
		t.Fatal("aborted session left no negotiation transcript")
	}
}

// TestNegotiationTranscriptAttack: the paper's attack ordering (locality
// attack on MLE ≫ MinHash+scramble) reproduced from the negotiation
// transcript alone, and the transcript's query streams are
// chunk-for-chunk the upload-tap view — the negotiation round leaks the
// full Section 3.3 adversary stream before a single byte is uploaded.
func TestNegotiationTranscriptAttack(t *testing.T) {
	dir := t.TempDir()
	repo, err := CreateRepository(dir, WithUploadObserver(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer repo.Close()
	rs, addr := startRepoServer(t, repo, ServerConfig{})

	c, err := DialServer(addr, RemoteClientConfig{Tenant: "acme"})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	names := []string{"mon", "tue", "wed"}
	for i, data := range tapWorkload() {
		if _, err := c.Backup(ctx, names[i], bytes.NewReader(data)); err != nil {
			t.Fatal(err)
		}
	}
	sctx, scancel := context.WithTimeout(ctx, 10*time.Second)
	defer scancel()
	if err := rs.Shutdown(sctx); err != nil {
		t.Fatal(err)
	}

	// Split the transcript into query streams and miss streams.
	var queries, misses []*TapBackup
	for _, b := range rs.NegotiationLog().Backups() {
		if strings.HasSuffix(b.Label, NegotiationMissSuffix) {
			misses = append(misses, b)
		} else {
			queries = append(queries, b)
		}
	}
	if len(queries) != 3 || len(misses) != 3 {
		t.Fatalf("%d query + %d miss streams, want 3 + 3", len(queries), len(misses))
	}

	// The query stream equals the upload-tap stream chunk for chunk: the
	// negotiation side channel subsumes the tap baseline.
	taps := repo.TraceLog().Backups()
	if len(taps) != 3 {
		t.Fatalf("%d tap traces, want 3", len(taps))
	}
	for i := range taps {
		if queries[i].Label != taps[i].Label {
			t.Fatalf("query %d labeled %q, tap %q", i, queries[i].Label, taps[i].Label)
		}
		qb, err := queries[i].Materialize()
		if err != nil {
			t.Fatal(err)
		}
		tb, err := taps[i].Materialize()
		if err != nil {
			t.Fatal(err)
		}
		if len(qb.Chunks) != len(tb.Chunks) {
			t.Fatalf("backup %d: %d negotiated chunks, %d tapped", i, len(qb.Chunks), len(tb.Chunks))
		}
		for j := range qb.Chunks {
			if qb.Chunks[j] != tb.Chunks[j] {
				t.Fatalf("backup %d chunk %d: negotiation %v, tap %v", i, j, qb.Chunks[j], tb.Chunks[j])
			}
		}
	}
	// The first backup of an empty store misses everything; later ones
	// miss strictly less — dedup state observable on the wire.
	first, err := misses[0].Materialize()
	if err != nil {
		t.Fatal(err)
	}
	last, err := misses[2].Materialize()
	if err != nil {
		t.Fatal(err)
	}
	q0, _ := queries[0].Materialize()
	if len(first.Chunks) != len(q0.Chunks) {
		t.Fatalf("first backup missed %d of %d chunks, want all", len(first.Chunks), len(q0.Chunks))
	}
	q2, _ := queries[2].Materialize()
	if len(last.Chunks) >= len(q2.Chunks) {
		t.Fatalf("third backup missed %d of %d chunks — no cross-backup dedup visible", len(last.Chunks), len(q2.Chunks))
	}

	// The Figure 10 methodology on the negotiation transcript alone.
	aux, err := queries[0].Materialize()
	if err != nil {
		t.Fatal(err)
	}
	target, err := queries[2].Materialize()
	if err != nil {
		t.Fatal(err)
	}
	const leakRate = 0.02
	cfg := attack.Config{U: 1, V: 15, W: 200000, Mode: attack.KnownPlaintext}
	rate := func(scheme defense.Scheme) float64 {
		enc, err := defense.Encrypt(target, scheme, 11)
		if err != nil {
			t.Fatal(err)
		}
		cc := cfg
		cc.Leaked = attack.SampleLeaked(enc.Backup, enc.Truth, leakRate, 42)
		res, err := attack.NewLocality(cc).Run(attack.BackupSource(enc.Backup), attack.BackupSource(aux), attack.Params{})
		if err != nil {
			t.Fatal(err)
		}
		return res.InferenceRate(enc.Truth)
	}
	mleRate := rate(defense.SchemeMLE)
	combined := rate(defense.SchemeCombined)
	if mleRate <= 2*leakRate {
		t.Fatalf("negotiation-transcript attack on MLE never expanded past its seeds (rate %v)", mleRate)
	}
	if combined >= mleRate {
		t.Fatalf("MinHash+scramble rate %v not below MLE rate %v on the negotiation transcript", combined, mleRate)
	}
	t.Logf("negotiation-transcript inference rates: MLE %.2f%%, MinHash+scramble %.2f%%", mleRate*100, combined*100)
}

// TestTenantStatsAccounting: exclusive and shared chunk accounting over a
// mixed workload — two tenants sharing a common core, each with private
// data, plus an un-namespaced in-process snapshot grouped under "".
func TestTenantStatsAccounting(t *testing.T) {
	repo, err := CreateRepository("")
	if err != nil {
		t.Fatal(err)
	}
	defer repo.Close()
	_, addr := startRepoServer(t, repo, ServerConfig{})
	ctx := context.Background()

	shared := repoData(101, 1<<20)
	onlyA := repoData(102, 512<<10)
	onlyB := repoData(103, 768<<10)

	for tenant, data := range map[string][]byte{
		"a": append(append([]byte(nil), shared...), onlyA...),
		"b": append(append([]byte(nil), shared...), onlyB...),
	} {
		c, err := DialServer(addr, RemoteClientConfig{Tenant: tenant})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Backup(ctx, "snap", bytes.NewReader(data)); err != nil {
			t.Fatal(err)
		}
		// The wire Stats answer must agree with the repository's own
		// accounting for this tenant.
		u, err := c.Stats()
		if err != nil {
			t.Fatal(err)
		}
		if u.Tenant != tenant || u.Snapshots != 1 || u.StoredBytes == 0 {
			t.Fatalf("wire stats for %q = %+v", tenant, u)
		}
		c.Close()
	}
	// An in-process backup lands in the "" tenant.
	if _, err := repo.Backup(ctx, "local", bytes.NewReader(onlyA)); err != nil {
		t.Fatal(err)
	}

	stats, err := repo.TenantStats()
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 3 {
		t.Fatalf("%d tenant rows, want 3 (\"\", a, b): %+v", len(stats), stats)
	}
	byTenant := make(map[string]TenantUsage)
	for _, u := range stats {
		byTenant[u.Tenant] = u
	}
	a, b, local := byTenant["a"], byTenant["b"], byTenant[""]
	// a and b share the common core (and nothing else with each other),
	// and a's private data is also the "" tenant's whole snapshot — so a
	// keeps at most a few boundary-spanning chunks exclusive (the cut
	// points at the shared/private junction differ between the two
	// streams) while b retains a real exclusive footprint.
	if a.SharedChunks == 0 || b.SharedChunks == 0 || local.SharedChunks == 0 {
		t.Fatalf("no sharing detected: a=%+v b=%+v local=%+v", a, b, local)
	}
	if b.ExclusiveChunks == 0 {
		t.Fatalf("b has no exclusive chunks: %+v", b)
	}
	if a.ExclusiveBytes > uint64(len(onlyA))/4 {
		t.Fatalf("a's private data should dedup against the local snapshot, yet a=%+v", a)
	}
	for _, u := range []TenantUsage{a, b, local} {
		if u.StoredBytes != u.ExclusiveBytes+u.SharedBytes {
			t.Fatalf("stored != exclusive + shared: %+v", u)
		}
		if u.LogicalBytes < u.StoredBytes {
			t.Fatalf("logical < stored: %+v", u)
		}
	}
	// The shared core chunks appear in both a's and b's shared counts.
	if a.SharedBytes < uint64(len(shared))/2 || b.SharedBytes < uint64(len(shared))/2 {
		t.Fatalf("shared core unaccounted: a=%+v b=%+v", a, b)
	}
}

// TestServerSealBatchingUnderWindow: concurrent remote commits under a
// group-commit window share container seal passes — strictly fewer
// store-level sync passes than backups (ROADMAP item: store-level
// straggler window).
func TestServerSealBatchingUnderWindow(t *testing.T) {
	const n = 8
	m := faultio.NewMemFS()
	var key Key
	copy(key[:], "seal batching key")
	repo, err := CreateRepository("repo",
		WithFileSystem(m), WithRepositoryKey(key), WithGroupCommit(25*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer repo.Close()
	_, addr := startRepoServer(t, repo, ServerConfig{})
	ctx := context.Background()

	pre := repo.store.SealSyncs()
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := DialServer(addr, RemoteClientConfig{Tenant: fmt.Sprintf("t%d", i)})
			if err != nil {
				errs[i] = err
				return
			}
			defer c.Close()
			_, errs[i] = c.Backup(ctx, "snap", bytes.NewReader(repoData(int64(200+i), 256<<10)))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("tenant %d: %v", i, err)
		}
	}
	if d := repo.store.SealSyncs() - pre; d >= n {
		t.Errorf("seal passes not batched: %d passes for %d concurrent commits", d, n)
	} else {
		t.Logf("store: %d seal passes for %d concurrent commits", d, n)
	}
	for i := 0; i < n; i++ {
		mustRestore(t, repo, fmt.Sprintf("t%d/snap", i), repoData(int64(200+i), 256<<10))
	}
}

// TestRecipeEntriesMatchRemote: a remote backup's sealed recipe opens
// with the repository key and matches what an in-process backup of the
// same bytes produces — the server-side sealing deviation is invisible
// to OpenRepository and Restore.
func TestRecipeEntriesMatchRemote(t *testing.T) {
	var key Key
	copy(key[:], "recipe parity key")
	repoA, err := CreateRepository("", WithRepositoryKey(key))
	if err != nil {
		t.Fatal(err)
	}
	defer repoA.Close()
	repoB, err := CreateRepository("", WithRepositoryKey(key))
	if err != nil {
		t.Fatal(err)
	}
	defer repoB.Close()
	_, addr := startRepoServer(t, repoA, ServerConfig{})

	data := repoData(55, 3<<20)
	c, err := DialServer(addr, RemoteClientConfig{Tenant: "x"})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	if _, err := c.Backup(ctx, "snap", bytes.NewReader(data)); err != nil {
		t.Fatal(err)
	}
	if _, err := repoB.Backup(ctx, "snap", bytes.NewReader(data)); err != nil {
		t.Fatal(err)
	}

	open := func(r *Repository, name string) *mle.Recipe {
		t.Helper()
		rec, ok := r.catalog.Get(name)
		if !ok {
			t.Fatalf("snapshot %q missing", name)
		}
		recipe, err := mle.OpenRecipe(rec.SealedRecipe, key)
		if err != nil {
			t.Fatal(err)
		}
		return recipe
	}
	remote := open(repoA, "x/snap")
	local := open(repoB, "snap")
	if len(remote.Entries) != len(local.Entries) {
		t.Fatalf("remote recipe has %d entries, local %d", len(remote.Entries), len(local.Entries))
	}
	for i := range remote.Entries {
		if remote.Entries[i] != local.Entries[i] {
			t.Fatalf("entry %d: remote %+v, local %+v", i, remote.Entries[i], local.Entries[i])
		}
	}
}
