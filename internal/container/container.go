package container

import (
	"fmt"

	"freqdedup/internal/fphash"
)

// DefaultBytes is the paper's container size (4 MB).
const DefaultBytes = 4 << 20

// Entry is one chunk stored in a container. Data may be nil for
// metadata-only simulations (package ddfs); Size is always set. Entries
// with nil Data cannot be persisted through a FileBackend.
type Entry struct {
	FP   fphash.Fingerprint
	Size uint32
	Data []byte
}

// Location addresses a stored chunk.
type Location struct {
	Container int // container ID
	Index     int // entry index within the container
}

// Container is one sealed or in-progress container.
type Container struct {
	ID      int
	Entries []Entry
	Bytes   int
}

// Store accumulates chunks into fixed-capacity containers. The one open
// (in-progress) container lives in memory; the moment a container seals it
// is handed to the Backend, which owns sealed-container storage — in
// memory (MemBackend, the default) or on disk (FileBackend). The zero
// value is not usable; construct with New or NewWithBackend.
//
// A Store is not safe for concurrent use: it is a single packer with one
// open container, and callers own its locking. The sharded dedup store
// runs one Store per shard behind the shard lock, which keeps packing
// append-safe under concurrent writers without a lock here on every
// Append. (Backends are safe for concurrent use; reads of sealed
// containers may bypass the packer's lock.)
type Store struct {
	capacity    int
	backend     Backend
	shard       int
	sealed      int // sealed containers so far; also the next container ID
	sealedBytes int
	current     *Container
}

// New returns a store with the given container byte capacity backed by a
// private in-memory backend (the pre-persistence behavior). It panics if
// capacity is not positive.
func New(capacity int) *Store {
	if capacity <= 0 {
		panic(fmt.Sprintf("container: capacity must be positive, got %d", capacity))
	}
	s, err := NewWithBackend(capacity, NewMemBackend(1), 0, nil)
	if err != nil {
		// NewMemBackend cannot fail to scan an empty shard.
		panic(fmt.Sprintf("container: %v", err))
	}
	return s
}

// NewWithBackend returns a store packing shard's containers through the
// given backend. If the backend already holds sealed containers for the
// shard (a reopened FileBackend), packing resumes after them: the store
// scans their metadata (one pass, without chunk data) to restore its
// container count and byte totals, and new containers are numbered after
// the existing ones. visit, if non-nil, is called for each pre-existing
// container during that same scan, so callers rebuilding their own state
// (the dedup store's fingerprint index) do not pay a second metadata
// pass; a non-nil error from visit aborts construction.
func NewWithBackend(capacity int, b Backend, shard int, visit func(*Container) error) (*Store, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("container: capacity must be positive, got %d", capacity)
	}
	if shard < 0 || shard >= b.Shards() {
		return nil, fmt.Errorf("container: shard %d out of range [0, %d)", shard, b.Shards())
	}
	s := &Store{capacity: capacity, backend: b, shard: shard}
	err := b.Scan(shard, false, func(c *Container) error {
		s.sealed++
		s.sealedBytes += c.Bytes
		if visit != nil {
			return visit(c)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return s, nil
}

// Backend returns the store's backend.
func (s *Store) Backend() Backend { return s.backend }

// Append adds a chunk to the current container, sealing it through the
// backend first if the chunk would not fit. It returns the chunk's
// location. The returned location is stable until the next Compact. On a
// backend seal error nothing is appended and the sealed-but-unwritten
// container stays current, so the store remains consistent.
func (s *Store) Append(e Entry) (Location, error) {
	if s.current == nil {
		s.current = &Container{ID: s.sealed}
	}
	if s.current.Bytes > 0 && s.current.Bytes+int(e.Size) > s.capacity {
		if _, err := s.Flush(); err != nil {
			return Location{}, err
		}
		s.current = &Container{ID: s.sealed}
	}
	loc := Location{Container: s.current.ID, Index: len(s.current.Entries)}
	s.current.Entries = append(s.current.Entries, e)
	s.current.Bytes += int(e.Size)
	return loc, nil
}

// Flush seals the current container, if any, persisting it through the
// backend. It returns the sealed container, or nil if the current
// container is empty. When Flush returns a nil error the container is as
// durable as the backend makes it (FileBackend: fsynced to disk).
func (s *Store) Flush() (*Container, error) {
	if s.current == nil || len(s.current.Entries) == 0 {
		return nil, nil
	}
	c := s.current
	if err := s.backend.Seal(s.shard, c); err != nil {
		return nil, err
	}
	s.sealed++
	s.sealedBytes += c.Bytes
	s.current = nil
	return c, nil
}

// Get returns the entry at loc, reading sealed containers through the
// backend. It returns ErrNotFound if the location does not exist and
// ErrCorrupt (wrapped) if the backend cannot validate the container.
func (s *Store) Get(loc Location) (Entry, error) {
	c, err := s.Container(loc.Container)
	if err != nil {
		return Entry{}, err
	}
	if loc.Index < 0 || loc.Index >= len(c.Entries) {
		return Entry{}, ErrNotFound
	}
	return c.Entries[loc.Index], nil
}

// Container returns the container with the given ID: the in-progress one
// from memory, sealed ones through the backend. The returned container
// must not be mutated.
func (s *Store) Container(id int) (*Container, error) {
	if s.current != nil && s.current.ID == id {
		return s.current, nil
	}
	if id < 0 || id >= s.sealed {
		return nil, ErrNotFound
	}
	return s.backend.Load(s.shard, id)
}

// Current returns the in-progress container, or nil if none is open. The
// caller must hold whatever lock guards the Store and must not mutate the
// container; the sharded dedup store uses it to snapshot open-container
// entries for the restore pipeline without a backend read.
func (s *Store) Current() *Container { return s.current }

// Count returns the number of containers, including a non-empty
// in-progress one.
func (s *Store) Count() int {
	n := s.sealed
	if s.current != nil && len(s.current.Entries) > 0 {
		n++
	}
	return n
}

// Bytes returns the total stored bytes across all containers.
func (s *Store) Bytes() int {
	n := s.sealedBytes
	if s.current != nil {
		n += s.current.Bytes
	}
	return n
}

// CompactStats reports what a Compact pass dropped.
type CompactStats struct {
	// EntriesDropped is the number of entries keep rejected.
	EntriesDropped int
	// BytesDropped is their total size.
	BytesDropped uint64
	// ContainersRewritten is the number of pre-compaction containers that
	// contained at least one dropped entry.
	ContainersRewritten int
}

// Compact rewrites the store keeping only entries for which keep returns
// true, repacking survivors densely in their existing order and
// renumbering containers from zero — the GC sweep's storage rewrite. The
// new sealed sequence replaces the old one atomically in the backend
// (FileBackend: a fresh file renamed over the old); the last, partial
// container stays open in memory, exactly as if the survivors had been
// Appended into an empty store.
//
// moved, if non-nil, is called with every surviving entry and its
// post-compaction location, in the new layout order. It may have been
// called even if Compact returns an error; callers must apply its effects
// only after a nil return. On error the store and backend are unchanged.
func (s *Store) Compact(keep func(Entry) bool, moved func(Entry, Location)) (CompactStats, error) {
	var st CompactStats
	var newSealed []*Container
	var cur *Container
	newBytes := 0
	place := func(e Entry) {
		if cur == nil {
			cur = &Container{ID: len(newSealed)}
		}
		if cur.Bytes > 0 && cur.Bytes+int(e.Size) > s.capacity {
			newBytes += cur.Bytes
			newSealed = append(newSealed, cur)
			cur = &Container{ID: len(newSealed)}
		}
		loc := Location{Container: cur.ID, Index: len(cur.Entries)}
		cur.Entries = append(cur.Entries, e)
		cur.Bytes += int(e.Size)
		if moved != nil {
			moved(e, loc)
		}
	}
	visit := func(c *Container) error {
		dropped := false
		for _, e := range c.Entries {
			if keep(e) {
				place(e)
			} else {
				st.EntriesDropped++
				st.BytesDropped += uint64(e.Size)
				dropped = true
			}
		}
		if dropped {
			st.ContainersRewritten++
		}
		return nil
	}
	if err := s.backend.Scan(s.shard, true, visit); err != nil {
		return CompactStats{}, err
	}
	if s.current != nil {
		_ = visit(s.current)
	}
	if err := s.backend.Rewrite(s.shard, newSealed); err != nil {
		return CompactStats{}, err
	}
	s.sealed = len(newSealed)
	s.sealedBytes = newBytes
	s.current = cur
	return st, nil
}
