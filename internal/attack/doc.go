// Package attack is the streaming frequency-analysis attack engine — the
// paper's primary contribution (Sections 3-5) rebuilt to run against what
// the real storage stack emits, at trace sizes far beyond RAM.
//
// Where the legacy package core consumes materialized *trace.Backup
// slices, this engine consumes ChunkSource: a replayable stream of
// (fingerprint, size) chunk references. Sources exist for in-memory
// backups (BackupSource — the trace generators and defense simulations)
// and for a repository's durable .fdt adversary trace log
// (internal/tracelog.BackupTrace), so the same attacks score synthetic
// workloads and real tapped upload histories.
//
// # Streaming two-pass architecture
//
// Each attack run counts its two streams (target ciphertext C, auxiliary
// plaintext M) with sharded, parallel, two-pass counters:
//
//	pass 1 (frequencies)  F_X: per-shard flat []freqEntry arenas, one
//	                      entry per unique chunk (count, first position,
//	                      size), fingerprint-prefix sharded exactly like
//	                      dedup.Store (fphash.Fingerprint.Shard).
//	pass 2 (neighbors)    L_X / R_X: per-shard co-occurrence rows, built
//	                      only for the locality attacks and pre-sized
//	                      from pass 1's unique counts.
//
// A scan goroutine reads the source in 4096-ref batches and broadcasts
// each batch to Params.Workers counting goroutines; every worker
// processes only the shards it owns, so counting is lock-free and each
// shard observes the stream strictly in order (first-occurrence positions
// and first-wins sizes match a serial count exactly). The stream itself
// is never materialized: resident memory is the tables (O(unique chunks))
// plus a few in-flight batches, regardless of stream length.
//
// Results are bit-identical at every shard and worker count because
// every ranking uses a total order (count, then first position where
// position ties are enabled, then fingerprint) — the ranked order is
// independent of arena concatenation order. The golden-equivalence suite
// (attack_test.go) holds this engine to bit-identical pairs, stats, and
// inference rates against the legacy core engine on the FSL, VM, and
// synthetic generator traces for all three attacks in both modes.
//
// # Migration from internal/core
//
//	internal/core (deprecated)            internal/attack
//	------------------------------------  -----------------------------------------
//	core.BasicAttack(c, m)                NewBasic(Config{}).Run(BackupSource(c), BackupSource(m), Params{})
//	core.LocalityAttack(c, m, cfg)        NewLocality(cfg).Run(...)  (cfg fields are identical)
//	cfg.SizeAware = true (advanced)       NewAdvanced(cfg).Run(...)
//	core.LocalityAttackWithStats          Result.Stats
//	core.InferenceRate(pairs, truth, c)   Result.InferenceRate(truth)
//	core.SampleLeaked                     SampleLeaked (same seeds, same samples)
//	core.Pair / GroundTruth / Mode        Pair / GroundTruth / Mode (core's are aliases)
//	(whole stream in memory)              ChunkSource / ChunkReader (streaming)
//	(single-threaded tables)              Params{Shards, Workers}
//
// Package core remains as the frozen reference implementation the golden
// tests compare against; new code should use this package.
package attack
