// Attackdemo: generate the synthetic backup chain (the paper's
// Lillibridge-style dataset), encrypt the latest backup with baseline MLE,
// and run all three inference attacks against it using each prior backup
// as the auxiliary information — a compact version of Figure 5(b).
package main

import (
	"fmt"

	"freqdedup"
)

func main() {
	params := freqdedup.DefaultSyntheticParams()
	params.Snapshots = 6 // keep the demo quick
	dataset := freqdedup.GenerateSynthetic(params)

	stats := dataset.Stats()
	fmt.Printf("synthetic dataset: %d backups, %d chunks (%d unique), %.1fx dedup\n\n",
		len(dataset.Backups), stats.LogicalChunks, stats.UniqueChunks, stats.Ratio())

	target := dataset.Backups[len(dataset.Backups)-1]
	enc := freqdedup.EncryptMLE(target)
	fmt.Printf("target: backup %s (%d unique ciphertext chunks)\n\n",
		target.Label, enc.Backup.UniqueCount())

	// The streaming attack engine: each attack consumes replayable
	// chunk sources (here in-memory backups; a repository's .fdt trace
	// logs work identically) through sharded parallel counters.
	cfg := freqdedup.DefaultLocalityConfig()
	run := func(a freqdedup.Attack, aux *freqdedup.Backup) float64 {
		res, err := a.Run(
			freqdedup.BackupAttackSource(enc.Backup),
			freqdedup.BackupAttackSource(aux),
			freqdedup.AttackParams{})
		if err != nil {
			panic(err)
		}
		return res.InferenceRate(enc.Truth)
	}

	fmt.Printf("%-10s | %-8s | %-9s | %-9s\n", "auxiliary", "basic", "locality", "advanced")
	fmt.Println("-----------+----------+-----------+----------")
	for _, aux := range dataset.Backups[:len(dataset.Backups)-1] {
		basic := run(freqdedup.NewBasicAttack(cfg), aux)
		locality := run(freqdedup.NewLocalityAttack(cfg), aux)
		advanced := run(freqdedup.NewAdvancedAttack(cfg), aux)
		fmt.Printf("%-10s | %7.3f%% | %8.2f%% | %8.2f%%\n",
			aux.Label, basic*100, locality*100, advanced*100)
	}
	fmt.Println("\nThe locality-based attack exploits chunk co-occurrence to infer")
	fmt.Println("far more chunks than classical frequency analysis; the advanced")
	fmt.Println("variant adds chunk-size classification on top.")
}
