// Package core implements the paper's primary contribution: frequency
// analysis inference attacks against encrypted deduplication.
//
//   - Basic attack (Algorithm 1): classical frequency analysis, matching
//     ciphertext and plaintext chunks rank-for-rank by frequency.
//   - Locality-based attack (Algorithm 2): seeds an inferred set with the
//     most frequent pairs (ciphertext-only mode) or leaked pairs
//     (known-plaintext mode), then iteratively infers neighbors through
//     left/right co-occurrence frequency analysis, exploiting chunk
//     locality in backup streams.
//   - Advanced locality-based attack (Algorithm 3): augments every
//     frequency-analysis step with chunk-size classification (sizes in
//     16-byte cipher blocks), for variable-size chunks.
//
// The attacks operate on trace.Backup streams: C, the ciphertext chunk
// sequence of the latest backup, and M, the plaintext chunk sequence of a
// prior backup (the auxiliary information). Severity is quantified by the
// inference rate: correctly inferred unique ciphertext chunks over total
// unique ciphertext chunks in the latest backup.
//
// # Data layout
//
// The whole-stream frequency tables F_C / F_M are flat: one append-only
// []freqEntry arena in first-occurrence order plus a fingerprint-to-index
// map. Duplicates cost one map lookup and an in-place increment, building
// the table allocates nothing per entry, and ranking sorts a copy of the
// arena directly — no per-entry pointers anywhere (the seed implementation
// kept a heap-allocated *stat per unique chunk, which dominated every
// attack's allocation profile). Chunk sizes are recorded at count time, so
// no separate fingerprint-to-size map is ever materialized. The per-chunk
// neighbor tables L_X / R_X keep small value-struct maps per row.
//
// # Tie-breaking
//
// The paper notes that how frequency ties are broken affects inference
// results (Section 4.1). This implementation uses two tie orders:
//
//   - Whole-stream frequency tables (the basic attack and the
//     locality-based attack's seeding) break ties by fingerprint value —
//     effectively arbitrary, as in the paper, whose basic attack is
//     crippled by exactly these ties.
//   - Per-neighbor co-occurrence tables (the locality-based attack's
//     iteration) break ties by the first stream position of the
//     co-occurrence — information the adversary observes directly (it
//     taps uploads in logical order, Section 3.3). Within one chunk's
//     small neighbor set, co-occurrence order is preserved across backup
//     versions wherever the surrounding layout is, so position is a
//     strong, locality-justified alignment signal; breaking these ties
//     arbitrarily would discard exploitable structure and understate the
//     attack.
//
// Deprecated: this package is the frozen, materialized-slice reference
// engine. New code should use package attack — the streaming, sharded,
// parallel engine whose output the golden-equivalence suite proves
// bit-identical to this one (pairs, stats, and inference rates) on the
// generator traces for all three attacks in both modes. The shared types
// (Pair, GroundTruth, Mode, LocalityConfig, AttackStats) are aliases of
// the attack package's, so values flow between the engines unchanged;
// see internal/attack's package documentation for the migration table.
package core

import (
	"slices"

	"freqdedup/internal/attack"
	"freqdedup/internal/fphash"
	"freqdedup/internal/trace"
)

// Pair is one inferred ciphertext-plaintext chunk pair (C, M). It is the
// streaming engine's pair type.
type Pair = attack.Pair

// stat is one chunk's (or neighbor pair's) frequency record: its occurrence
// count and the stream position of its first occurrence (for tie-breaking).
type stat struct {
	count int32
	first int32
}

// freqEntry is one chunk with its frequency record and size (for the
// advanced attack's classification).
type freqEntry struct {
	fp   fphash.Fingerprint
	stat stat
	size uint32
}

// freqTable is a whole-stream frequency table (F_C / F_M of the paper):
// a flat entry arena in first-occurrence order, indexed by fingerprint.
type freqTable struct {
	idx     map[fphash.Fingerprint]int32
	entries []freqEntry
}

// newFreqTable returns a table pre-sized for a stream of n chunks.
func newFreqTable(n int) *freqTable {
	return &freqTable{
		idx:     make(map[fphash.Fingerprint]int32, n),
		entries: make([]freqEntry, 0, n),
	}
}

// bump counts one occurrence of fp at stream position pos with the given
// chunk size. Duplicates are one map lookup and an in-place increment.
// The size recorded at first occurrence is canonical: if a truncated
// fingerprint collides across chunks of different sizes, first-wins is
// the (arbitrary) classification rule for the size-aware attack.
func (t *freqTable) bump(fp fphash.Fingerprint, pos int, size uint32) {
	if i, ok := t.idx[fp]; ok {
		t.entries[i].stat.count++
		return
	}
	t.idx[fp] = int32(len(t.entries))
	t.entries = append(t.entries, freqEntry{
		fp:   fp,
		stat: stat{count: 1, first: int32(pos)},
		size: size,
	})
}

// has reports whether fp occurs in the stream.
func (t *freqTable) has(fp fphash.Fingerprint) bool {
	_, ok := t.idx[fp]
	return ok
}

// get returns fp's frequency record.
func (t *freqTable) get(fp fphash.Fingerprint) (stat, bool) {
	i, ok := t.idx[fp]
	if !ok {
		return stat{}, false
	}
	return t.entries[i].stat, true
}

// sizeOf returns the chunk size recorded for fp (0 if absent).
func (t *freqTable) sizeOf(fp fphash.Fingerprint) uint32 {
	i, ok := t.idx[fp]
	if !ok {
		return 0
	}
	return t.entries[i].size
}

// flat returns a copy of the entry arena for ranking.
func (t *freqTable) flat() []freqEntry {
	return append([]freqEntry(nil), t.entries...)
}

// counts is a value-struct frequency map — one neighbor-table row L_X[X] /
// R_X[X] of the paper. Rows are small (backup streams are local), so a map
// per row beats arena bookkeeping, and value records keep it pointer-free.
type counts map[fphash.Fingerprint]stat

// bump increments the count for fp, recording position pos on first sight.
func (c counts) bump(fp fphash.Fingerprint, pos int) {
	if s, ok := c[fp]; ok {
		s.count++
		c[fp] = s
		return
	}
	c[fp] = stat{count: 1, first: int32(pos)}
}

// flat flattens a neighbor row into rankable entries, resolving each
// neighbor's chunk size from its stream's frequency table.
func (c counts) flat(sizes *freqTable) []freqEntry {
	out := make([]freqEntry, 0, len(c))
	for fp, s := range c {
		out = append(out, freqEntry{fp: fp, stat: s, size: sizes.sizeOf(fp)})
	}
	return out
}

// neighborTable maps each chunk to the co-occurrence counts of its left (or
// right) neighbors — L_X / R_X of the paper.
type neighborTable map[fphash.Fingerprint]counts

// neighborRowHint sizes newly created neighbor-table rows: most chunks
// co-occur with a handful of distinct neighbors (backup streams are highly
// local), so one small pre-sized bucket avoids the common grow-and-rehash.
const neighborRowHint = 4

// countStream builds F, L, and R for a backup stream (the COUNT function of
// Algorithm 2): chunk frequencies plus left/right neighbor co-occurrence
// frequencies.
func countStream(b *trace.Backup) (f *freqTable, l, r neighborTable) {
	f = newFreqTable(len(b.Chunks))
	l = make(neighborTable, len(b.Chunks))
	r = make(neighborTable, len(b.Chunks))
	for i, c := range b.Chunks {
		f.bump(c.FP, i, c.Size)
		if i > 0 {
			left := b.Chunks[i-1].FP
			lc := l[c.FP]
			if lc == nil {
				lc = make(counts, neighborRowHint)
				l[c.FP] = lc
			}
			lc.bump(left, i)
			rc := r[left]
			if rc == nil {
				rc = make(counts, neighborRowHint)
				r[left] = rc
			}
			rc.bump(c.FP, i)
		}
	}
	return f, l, r
}

// countStreams runs countStream over the ciphertext and plaintext backups
// concurrently — the two tables are independent, and together they are the
// setup cost of every locality-attack run.
func countStreams(c, m *trace.Backup) (fc *freqTable, lc, rc neighborTable, fm *freqTable, lm, rm neighborTable) {
	done := make(chan struct{})
	go func() {
		defer close(done)
		fm, lm, rm = countStream(m)
	}()
	fc, lc, rc = countStream(c)
	<-done
	return
}

// rankCompare orders entries by descending frequency. When posTies is set,
// ties break by first stream occurrence (neighbor-table analyses);
// otherwise by fingerprint (whole-stream analyses — arbitrary, as in the
// paper). Fingerprint order is the final key either way, for determinism;
// it is compared as one big-endian word, which orders identically to the
// lexicographic byte order and costs one load per side instead of a byte
// loop. Counts and positions are compared by subtraction: both are stream
// positions/occurrence counts, far below the int32 overflow range.
func rankCompare(a, b freqEntry, posTies bool) int {
	if d := b.stat.count - a.stat.count; d != 0 {
		return int(d)
	}
	if posTies {
		if d := a.stat.first - b.stat.first; d != 0 {
			return int(d)
		}
	}
	au, bu := a.fp.Uint64(), b.fp.Uint64()
	switch {
	case au < bu:
		return -1
	case au > bu:
		return 1
	}
	return 0
}

// rankIndexThreshold is the table size above which rank sorts an index
// array instead of the entries themselves: past a couple thousand entries
// the sort's data movement (24-byte elements) costs more than the final
// permutation pass, while the tiny neighbor rows sort faster in place.
const rankIndexThreshold = 2048

// rank sorts entries into matching order with slices.SortFunc — flat value
// entries, no reflection, no per-entry indirection. Large tables are
// sorted index-based: the sort moves 4-byte positions instead of whole
// entries, then one permutation pass materializes the ranked order. The
// sort is always in place: both paths leave the input slice ranked and
// return it, so ignoring the return value is safe. Callers pass either
// throwaway copies or a freqTable's live arena — in the latter case the
// table's idx positions no longer match entry order afterward, so the
// table must not be used again.
func rank(entries []freqEntry, posTies bool) []freqEntry {
	if len(entries) >= rankIndexThreshold {
		order := make([]int32, len(entries))
		for i := range order {
			order[i] = int32(i)
		}
		slices.SortFunc(order, func(i, j int32) int { return rankCompare(entries[i], entries[j], posTies) })
		out := make([]freqEntry, len(entries))
		for k, i := range order {
			out[k] = entries[i]
		}
		copy(entries, out)
		return entries
	}
	if posTies {
		slices.SortFunc(entries, func(a, b freqEntry) int { return rankCompare(a, b, true) })
	} else {
		slices.SortFunc(entries, func(a, b freqEntry) int { return rankCompare(a, b, false) })
	}
	return entries
}

// freqAnalysis pairs the i-th most frequent ciphertext entry with the i-th
// most frequent plaintext entry, returning at most x pairs (x <= 0 means
// unbounded) — the FREQ-ANALYSIS function of Algorithms 1 and 2. The entry
// slices are sorted in place; callers must not rely on their prior order
// afterward (see rank's arena caveat).
func freqAnalysis(ec, em []freqEntry, x int, sizeAware, posTies bool) []Pair {
	if sizeAware {
		return freqAnalysisBySize(ec, em, x, posTies)
	}
	rc := rank(ec, posTies)
	rm := rank(em, posTies)
	n := len(rc)
	if len(rm) < n {
		n = len(rm)
	}
	if x > 0 && x < n {
		n = x
	}
	if n == 0 {
		return nil
	}
	pairs := make([]Pair, n)
	for i := 0; i < n; i++ {
		pairs[i] = Pair{C: rc[i].fp, M: rm[i].fp}
	}
	return pairs
}

// blocks returns the chunk size in 16-byte cipher blocks, ceil(size/16)
// (Algorithm 3's CLASSIFY step; AES block size is 16 bytes).
func blocks(size uint32) uint32 {
	return (size + 15) / 16
}

// freqAnalysisBySize is the advanced attack's frequency analysis
// (Algorithm 3): entries are first classified by size in cipher blocks,
// and rank matching happens within each size class, returning up to x
// pairs per class.
func freqAnalysisBySize(ec, em []freqEntry, x int, posTies bool) []Pair {
	classify := func(entries []freqEntry) map[uint32][]freqEntry {
		by := make(map[uint32][]freqEntry)
		for _, e := range entries {
			cls := blocks(e.size)
			by[cls] = append(by[cls], e)
		}
		for cls, list := range by {
			by[cls] = rank(list, posTies)
		}
		return by
	}
	bc := classify(ec)
	bm := classify(em)

	// Deterministic class order.
	classes := make([]uint32, 0, len(bc))
	for s := range bc {
		if _, ok := bm[s]; ok {
			classes = append(classes, s)
		}
	}
	slices.Sort(classes)

	var pairs []Pair
	for _, s := range classes {
		rc, rm := bc[s], bm[s]
		n := len(rc)
		if len(rm) < n {
			n = len(rm)
		}
		if x > 0 && x < n {
			n = x
		}
		for i := 0; i < n; i++ {
			pairs = append(pairs, Pair{C: rc[i].fp, M: rm[i].fp})
		}
	}
	return pairs
}
