package fpindex

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"

	"freqdedup/internal/bloom"
	"freqdedup/internal/container"
	"freqdedup/internal/fphash"
	"freqdedup/internal/vfs"
)

// ErrCorrupt is returned when a run file or index manifest fails
// structural validation or a checksum. Like container.ErrCorrupt it is
// distinct from "not found": the bytes are there but cannot be trusted,
// and the index layer responds by rebuilding from the containers (the
// authoritative copy) rather than ever serving a wrong Location.
var ErrCorrupt = errors.New("fpindex: index file corrupt")

// On-disk layout constants; see doc.go for the full format description.
const (
	runMagic    = 0x46444931 // "FDI1": one sorted-run file
	runVersion  = 1
	footerMagic = 0x46444946 // "FDIF"

	// runHeaderLen is magic + version + shard + level (u32 each) + u64
	// entry count.
	runHeaderLen = 24
	// entryLen is one posting: 8-byte fingerprint + u32 container ID +
	// u32 entry index.
	entryLen = fphash.Size + 8
	// blockEntries is the lookup granularity: postings per CRC-framed
	// block (64 KiB of entries). One fence per block stays in memory.
	blockEntries = 4096
	blockCRCLen  = 4
	// fenceLen is one in-memory fence: the block's first fingerprint and
	// its file offset.
	fenceLen = fphash.Size + 8
	// footerLen is filterOff + fenceOff + count (u64 each) + crc + magic.
	footerLen = 28 + 4 + 8
)

// Posting is one index entry: a fingerprint and where its chunk lives.
type Posting struct {
	FP  fphash.Fingerprint
	Loc container.Location
}

// sortPostings orders postings by fingerprint (the run file's invariant).
func sortPostings(ps []Posting) {
	sort.Slice(ps, func(i, j int) bool { return ps[i].FP.Less(ps[j].FP) })
}

// runFileName returns the file holding one sorted run.
func runFileName(shard int, seq uint64) string {
	return fmt.Sprintf("run-%04d-%012d.fdi", shard, seq)
}

// fence is one block's in-memory index entry.
type fence struct {
	first  fphash.Fingerprint
	offset int64
}

// run is one immutable on-disk sorted run: open file handle, in-memory
// fences and Bloom filter, everything else on disk. Runs are never
// mutated after a successful writeRun; concurrent readers need no lock.
type run struct {
	f      vfs.File
	path   string
	shard  int
	seq    uint64
	level  int
	count  uint64
	filter *bloom.Filter
	fences []fence
	// filterOff/fenceOff delimit the sections: blocks end at filterOff,
	// the filter ends at fenceOff.
	filterOff int64
	fenceOff  int64
}

func (r *run) blocks() int { return len(r.fences) }

// blockRange returns the byte range of block i's entry region (CRC
// excluded) and how many entries it holds.
func (r *run) blockRange(i int) (off int64, entryBytes int, entries int) {
	off = r.fences[i].offset
	end := r.filterOff
	if i+1 < len(r.fences) {
		end = r.fences[i+1].offset
	}
	entryBytes = int(end-off) - blockCRCLen
	return off, entryBytes, entryBytes / entryLen
}

// readBlock reads and CRC-verifies one block, returning its raw entry
// bytes. This is the disk probe of a lookup; callers cache the result.
func (r *run) readBlock(i int) ([]byte, error) {
	off, entryBytes, _ := r.blockRange(i)
	buf := make([]byte, entryBytes+blockCRCLen)
	if _, err := r.f.ReadAt(buf, off); err != nil {
		return nil, fmt.Errorf("fpindex: read run block: %w", err)
	}
	if crc := crc32.ChecksumIEEE(buf[:entryBytes]); crc != binary.LittleEndian.Uint32(buf[entryBytes:]) {
		return nil, fmt.Errorf("%w: %s block %d checksum mismatch", ErrCorrupt, filepath.Base(r.path), i)
	}
	return buf[:entryBytes], nil
}

// findBlock returns the index of the block that could hold fp, or -1 when
// fp sorts before the run's first fingerprint.
func (r *run) findBlock(fp fphash.Fingerprint) int {
	// The last fence with first <= fp.
	lo, hi := 0, len(r.fences)
	for lo < hi {
		mid := (lo + hi) / 2
		if r.fences[mid].first.Compare(fp) <= 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo - 1
}

// searchBlock binary-searches verified block bytes for fp.
func searchBlock(block []byte, fp fphash.Fingerprint) (container.Location, bool) {
	lo, hi := 0, len(block)/entryLen
	for lo < hi {
		mid := (lo + hi) / 2
		e := block[mid*entryLen:]
		var efp fphash.Fingerprint
		copy(efp[:], e)
		switch c := efp.Compare(fp); {
		case c < 0:
			lo = mid + 1
		case c > 0:
			hi = mid
		default:
			return container.Location{
				Container: int(binary.LittleEndian.Uint32(e[fphash.Size:])),
				Index:     int(binary.LittleEndian.Uint32(e[fphash.Size+4:])),
			}, true
		}
	}
	return container.Location{}, false
}

// iterate streams the run's postings in fingerprint order, verifying each
// block's CRC — the compaction merge's read path. A non-nil error from fn
// aborts the iteration.
func (r *run) iterate(fn func(Posting) error) error {
	for i := 0; i < r.blocks(); i++ {
		block, err := r.readBlock(i)
		if err != nil {
			return err
		}
		for o := 0; o+entryLen <= len(block); o += entryLen {
			var p Posting
			copy(p.FP[:], block[o:])
			p.Loc.Container = int(binary.LittleEndian.Uint32(block[o+fphash.Size:]))
			p.Loc.Index = int(binary.LittleEndian.Uint32(block[o+fphash.Size+4:]))
			if err := fn(p); err != nil {
				return err
			}
		}
	}
	return nil
}

func (r *run) close() error {
	if r.f == nil {
		return nil
	}
	err := r.f.Close()
	r.f = nil
	return err
}

// postingSource streams sorted postings into writeRun: a slice for
// memtable flushes, a k-way merge of runs for compaction.
type postingSource interface {
	// next returns the next posting in fingerprint order; ok is false at
	// the end of the stream.
	next() (p Posting, ok bool, err error)
	// remaining returns an upper bound on the postings left (used to size
	// the run's Bloom filter; exactness is not required).
	remaining() uint64
}

// sliceSource streams an already-sorted posting slice.
type sliceSource struct {
	ps []Posting
	i  int
}

func (s *sliceSource) next() (Posting, bool, error) {
	if s.i >= len(s.ps) {
		return Posting{}, false, nil
	}
	p := s.ps[s.i]
	s.i++
	return p, true, nil
}

func (s *sliceSource) remaining() uint64 { return uint64(len(s.ps) - s.i) }

// writeRun streams src into a new run file, fsyncs it, and opens it for
// reading. The caller owns making the file's existence durable (directory
// sync) and referencing it from the manifest; until then a crash leaves a
// stray file that the next open removes.
func writeRun(fsys vfs.FS, dir string, shard int, seq uint64, level int, src postingSource) (*run, error) {
	path := filepath.Join(dir, runFileName(shard, seq))
	f, err := fsys.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("fpindex: create run file: %w", err)
	}
	abort := func(err error) (*run, error) {
		f.Close()
		fsys.Remove(path)
		return nil, err
	}

	filter := bloom.NewWithEstimates(src.remaining(), runFilterFPP)
	var hdr [runHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:], runMagic)
	binary.LittleEndian.PutUint32(hdr[4:], runVersion)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(shard))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(level))
	// The count is back-filled once the source is drained.
	if _, err := f.WriteAt(hdr[:], 0); err != nil {
		return abort(err)
	}

	var (
		fences []fence
		block  = make([]byte, 0, blockEntries*entryLen+blockCRCLen)
		first  fphash.Fingerprint
		n      int // entries in the current block
		count  uint64
		offset = int64(runHeaderLen)
	)
	flushBlock := func() error {
		if n == 0 {
			return nil
		}
		fences = append(fences, fence{first: first, offset: offset})
		block = binary.LittleEndian.AppendUint32(block, crc32.ChecksumIEEE(block))
		if _, err := f.WriteAt(block, offset); err != nil {
			return err
		}
		offset += int64(len(block))
		block = block[:0]
		n = 0
		return nil
	}
	var prev fphash.Fingerprint
	for {
		p, ok, err := src.next()
		if err != nil {
			return abort(err)
		}
		if !ok {
			break
		}
		if count > 0 && p.FP.Compare(prev) <= 0 {
			return abort(fmt.Errorf("fpindex: write run: postings out of order at %v", p.FP))
		}
		prev = p.FP
		if n == 0 {
			first = p.FP
		}
		block = append(block, p.FP[:]...)
		block = binary.LittleEndian.AppendUint32(block, uint32(p.Loc.Container))
		block = binary.LittleEndian.AppendUint32(block, uint32(p.Loc.Index))
		filter.Add(p.FP)
		count++
		if n++; n == blockEntries {
			if err := flushBlock(); err != nil {
				return abort(err)
			}
		}
	}
	if err := flushBlock(); err != nil {
		return abort(err)
	}
	if count == 0 {
		return abort(errors.New("fpindex: write run: empty posting source"))
	}

	filterOff := offset
	fbuf := filter.AppendBinary(nil)
	if _, err := f.WriteAt(fbuf, offset); err != nil {
		return abort(err)
	}
	offset += int64(len(fbuf))

	fenceOff := offset
	sec := make([]byte, 0, len(fences)*fenceLen+blockCRCLen)
	for _, fe := range fences {
		sec = append(sec, fe.first[:]...)
		sec = binary.LittleEndian.AppendUint64(sec, uint64(fe.offset))
	}
	sec = binary.LittleEndian.AppendUint32(sec, crc32.ChecksumIEEE(sec))
	if _, err := f.WriteAt(sec, offset); err != nil {
		return abort(err)
	}
	offset += int64(len(sec))

	var ftr [footerLen]byte
	binary.LittleEndian.PutUint64(ftr[0:], uint64(filterOff))
	binary.LittleEndian.PutUint64(ftr[8:], uint64(fenceOff))
	binary.LittleEndian.PutUint64(ftr[16:], count)
	binary.LittleEndian.PutUint32(ftr[24:], crc32.ChecksumIEEE(ftr[:24]))
	binary.LittleEndian.PutUint32(ftr[28:], footerMagic)
	if _, err := f.WriteAt(ftr[:], offset); err != nil {
		return abort(err)
	}
	// Back-fill the header's entry count, then one fsync covers the whole
	// file: a run is durable only as a unit.
	binary.LittleEndian.PutUint64(hdr[16:], count)
	if _, err := f.WriteAt(hdr[:], 0); err != nil {
		return abort(err)
	}
	if err := f.Sync(); err != nil {
		return abort(err)
	}
	return &run{
		f: f, path: path, shard: shard, seq: seq, level: level,
		count: count, filter: filter, fences: fences,
		filterOff: filterOff, fenceOff: fenceOff,
	}, nil
}

// openRun opens an existing run file, reading only its footer, Bloom
// filter, and fence section — O(metadata), no posting blocks. Any
// structural or checksum failure returns ErrCorrupt (wrapped); the caller
// falls back to rebuilding the shard's index from its containers.
func openRun(fsys vfs.FS, dir string, shard int, seq uint64, level int, wantCount uint64) (*run, error) {
	path := filepath.Join(dir, runFileName(shard, seq))
	f, err := fsys.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, fmt.Errorf("fpindex: open run: %w", err)
	}
	fail := func(err error) (*run, error) {
		f.Close()
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		return fail(err)
	}
	size := st.Size()
	if size < runHeaderLen+footerLen {
		return fail(fmt.Errorf("%w: %s shorter than header+footer", ErrCorrupt, filepath.Base(path)))
	}
	var hdr [runHeaderLen]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		return fail(err)
	}
	if m := binary.LittleEndian.Uint32(hdr[0:]); m != runMagic {
		return fail(fmt.Errorf("%w: %s has bad magic %#x", ErrCorrupt, filepath.Base(path), m))
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != runVersion {
		return fail(fmt.Errorf("%w: %s has unsupported version %d", ErrCorrupt, filepath.Base(path), v))
	}
	if s := binary.LittleEndian.Uint32(hdr[8:]); int(s) != shard {
		return fail(fmt.Errorf("%w: %s labeled shard %d", ErrCorrupt, filepath.Base(path), s))
	}
	var ftr [footerLen]byte
	if _, err := f.ReadAt(ftr[:], size-footerLen); err != nil {
		return fail(err)
	}
	if m := binary.LittleEndian.Uint32(ftr[28:]); m != footerMagic {
		return fail(fmt.Errorf("%w: %s has bad footer magic %#x", ErrCorrupt, filepath.Base(path), m))
	}
	if crc := crc32.ChecksumIEEE(ftr[:24]); crc != binary.LittleEndian.Uint32(ftr[24:]) {
		return fail(fmt.Errorf("%w: %s footer checksum mismatch", ErrCorrupt, filepath.Base(path)))
	}
	filterOff := int64(binary.LittleEndian.Uint64(ftr[0:]))
	fenceOff := int64(binary.LittleEndian.Uint64(ftr[8:]))
	count := binary.LittleEndian.Uint64(ftr[16:])
	if hc := binary.LittleEndian.Uint64(hdr[16:]); hc != count {
		return fail(fmt.Errorf("%w: %s header count %d, footer %d", ErrCorrupt, filepath.Base(path), hc, count))
	}
	// Geometry plausibility, checked before any count-derived allocation:
	// every section must fit the file, and the declared entry count must
	// fit the block region.
	if count == 0 || filterOff < runHeaderLen || fenceOff < filterOff || fenceOff > size-footerLen {
		return fail(fmt.Errorf("%w: %s has implausible section offsets", ErrCorrupt, filepath.Base(path)))
	}
	if count > uint64(filterOff-runHeaderLen)/entryLen {
		return fail(fmt.Errorf("%w: %s declares %d entries beyond its block region", ErrCorrupt, filepath.Base(path), count))
	}
	blocks := int((count + blockEntries - 1) / blockEntries)
	fenceBytes := blocks*fenceLen + blockCRCLen
	if int64(fenceBytes) != size-footerLen-fenceOff {
		return fail(fmt.Errorf("%w: %s fence section size mismatch", ErrCorrupt, filepath.Base(path)))
	}
	if wantCount != 0 && count != wantCount {
		return fail(fmt.Errorf("%w: %s holds %d entries, manifest says %d", ErrCorrupt, filepath.Base(path), count, wantCount))
	}

	sec := make([]byte, fenceBytes)
	if _, err := f.ReadAt(sec, fenceOff); err != nil {
		return fail(err)
	}
	if crc := crc32.ChecksumIEEE(sec[:fenceBytes-blockCRCLen]); crc != binary.LittleEndian.Uint32(sec[fenceBytes-blockCRCLen:]) {
		return fail(fmt.Errorf("%w: %s fence checksum mismatch", ErrCorrupt, filepath.Base(path)))
	}
	fences := make([]fence, blocks)
	prevOff := int64(0)
	for i := range fences {
		copy(fences[i].first[:], sec[i*fenceLen:])
		fences[i].offset = int64(binary.LittleEndian.Uint64(sec[i*fenceLen+fphash.Size:]))
		if fences[i].offset < runHeaderLen || fences[i].offset >= filterOff || fences[i].offset <= prevOff && i > 0 {
			return fail(fmt.Errorf("%w: %s fence %d offset out of range", ErrCorrupt, filepath.Base(path), i))
		}
		if i > 0 && !fences[i-1].first.Less(fences[i].first) {
			return fail(fmt.Errorf("%w: %s fences out of order at %d", ErrCorrupt, filepath.Base(path), i))
		}
		prevOff = fences[i].offset
	}
	if fences[0].offset != runHeaderLen {
		return fail(fmt.Errorf("%w: %s first block not at header end", ErrCorrupt, filepath.Base(path)))
	}

	fbuf := make([]byte, fenceOff-filterOff)
	if _, err := f.ReadAt(fbuf, filterOff); err != nil {
		return fail(err)
	}
	filter, consumed, err := bloom.Unmarshal(fbuf)
	if err != nil || consumed != len(fbuf) {
		return fail(fmt.Errorf("%w: %s filter section: %v", ErrCorrupt, filepath.Base(path), err))
	}

	r := &run{
		f: f, path: path, shard: shard, seq: seq, level: level,
		count: count, filter: filter, fences: fences,
		filterOff: filterOff, fenceOff: fenceOff,
	}
	// Every block's entry region must be a whole number of entries; check
	// now so lookups can trust blockRange arithmetic.
	total := uint64(0)
	for i := range fences {
		_, entryBytes, entries := r.blockRange(i)
		if entryBytes <= 0 || entryBytes%entryLen != 0 || entries > blockEntries {
			return fail(fmt.Errorf("%w: %s block %d has implausible size", ErrCorrupt, filepath.Base(path), i))
		}
		total += uint64(entries)
	}
	if total != count {
		return fail(fmt.Errorf("%w: %s blocks hold %d entries, footer says %d", ErrCorrupt, filepath.Base(path), total, count))
	}
	return r, nil
}

// mergeSource is the k-way merge of several runs' posting streams, newest
// run first: when the same fingerprint appears in several runs the newest
// posting wins and older ones are dropped. (The dedup store inserts each
// fingerprint once, so in-shard duplicates only arise from interrupted
// layout changes — the merge is defensive either way.)
type mergeSource struct {
	streams []*runStream // ordered newest first
	total   uint64
}

type runStream struct {
	r     *run
	block []byte
	bi    int // next block to read
	off   int // byte offset into block
	done  bool
}

func newMergeSource(runs []*run) *mergeSource {
	ms := &mergeSource{streams: make([]*runStream, len(runs))}
	for i, r := range runs {
		ms.streams[i] = &runStream{r: r}
		ms.total += r.count
	}
	return ms
}

func (s *runStream) peek() (fphash.Fingerprint, bool, error) {
	if s.done {
		return fphash.Fingerprint{}, false, nil
	}
	if s.off >= len(s.block) {
		if s.bi >= s.r.blocks() {
			s.done = true
			return fphash.Fingerprint{}, false, nil
		}
		b, err := s.r.readBlock(s.bi)
		if err != nil {
			return fphash.Fingerprint{}, false, err
		}
		s.block, s.bi, s.off = b, s.bi+1, 0
	}
	var fp fphash.Fingerprint
	copy(fp[:], s.block[s.off:])
	return fp, true, nil
}

func (s *runStream) pop() Posting {
	var p Posting
	copy(p.FP[:], s.block[s.off:])
	p.Loc.Container = int(binary.LittleEndian.Uint32(s.block[s.off+fphash.Size:]))
	p.Loc.Index = int(binary.LittleEndian.Uint32(s.block[s.off+fphash.Size+4:]))
	s.off += entryLen
	return p
}

func (ms *mergeSource) next() (Posting, bool, error) {
	// Smallest fingerprint across streams; ties go to the newest stream
	// (lowest slice index) and losers are skipped.
	best := -1
	var bestFP fphash.Fingerprint
	for i, s := range ms.streams {
		fp, ok, err := s.peek()
		if err != nil {
			return Posting{}, false, err
		}
		if !ok {
			continue
		}
		if best == -1 || fp.Less(bestFP) {
			best, bestFP = i, fp
		}
	}
	if best == -1 {
		return Posting{}, false, nil
	}
	p := ms.streams[best].pop()
	ms.total--
	for _, s := range ms.streams[best+1:] {
		fp, ok, err := s.peek()
		if err != nil {
			return Posting{}, false, err
		}
		if ok && fp == p.FP {
			s.pop()
			ms.total--
		}
	}
	return p, true, nil
}

func (ms *mergeSource) remaining() uint64 { return ms.total }
