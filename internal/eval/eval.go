// Package eval reproduces the paper's evaluation: every figure in Sections
// 5 (attack evaluation) and 7 (defense evaluation) has a runner that
// regenerates its data series on the laptop-scale datasets. The runners
// are shared by the benchmark harness (bench_test.go) and the command-line
// tools (cmd/attack, cmd/defend, cmd/ddfsbench).
package eval

import (
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"sync"

	"freqdedup/internal/attack"
	"freqdedup/internal/defense"
	"freqdedup/internal/trace"
)

// Series is one line of a figure: a named sequence of y-values aligned
// with the figure's x-axis.
type Series struct {
	Name string
	Y    []float64
}

// Figure is one reproduced table/figure: an x-axis and one or more series.
type Figure struct {
	ID     string // e.g. "Fig 5(a)"
	Title  string
	XLabel string
	X      []string
	Series []Series
	// Percent formats y-values as percentages.
	Percent bool
	// Notes carries caveats (scaling substitutions etc.).
	Notes []string
}

// Render writes the figure as an aligned text table.
func (f *Figure) Render(w io.Writer) {
	fmt.Fprintf(w, "%s: %s\n", f.ID, f.Title)
	headers := make([]string, 0, len(f.Series)+1)
	headers = append(headers, f.XLabel)
	for _, s := range f.Series {
		headers = append(headers, s.Name)
	}
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	rows := make([][]string, len(f.X))
	for r, x := range f.X {
		row := make([]string, len(headers))
		row[0] = x
		for c, s := range f.Series {
			if r < len(s.Y) {
				if f.Percent {
					row[c+1] = fmt.Sprintf("%.3f%%", s.Y[r]*100)
				} else {
					row[c+1] = fmt.Sprintf("%.4g", s.Y[r])
				}
			}
		}
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
		rows[r] = row
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintf(w, "  %s\n", strings.Join(parts, " | "))
	}
	line(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range rows {
		line(row)
	}
	for _, n := range f.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// Datasets bundles the three evaluation datasets (Section 5.1).
type Datasets struct {
	FSL       *trace.Dataset
	Synthetic *trace.Dataset
	VM        *trace.Dataset
}

// list returns the bundle's distinct datasets in slot order. Figure
// runners iterate this instead of the raw slots so a bundle built by
// SingleDataset (the same dataset in every slot — e.g. a repository's
// replayed trace logs) yields each figure once instead of three times.
func (ds Datasets) list() []*trace.Dataset {
	return distinct(ds.FSL, ds.Synthetic, ds.VM)
}

// distinct drops nil and pointer-duplicate datasets, preserving order.
func distinct(list ...*trace.Dataset) []*trace.Dataset {
	var out []*trace.Dataset
	for _, d := range list {
		dup := d == nil
		for _, seen := range out {
			if seen == d {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, d)
		}
	}
	return out
}

// SingleDataset bundles one dataset into every evaluation slot, so every
// figure runner works on it — the path that reproduces the paper's
// figures from a real repository's replayed trace logs (cmd/defend
// -dataset repo:<dir>) or from any single trace file.
func SingleDataset(d *trace.Dataset) Datasets {
	return Datasets{FSL: d, Synthetic: d, VM: d}
}

var (
	genOnce sync.Once
	genData Datasets
)

// Generate builds the default laptop-scale datasets. Results are cached:
// the generators are deterministic, and every figure runner uses the same
// three datasets, as the paper does.
//
// Setting FREQDEDUP_SCALE to a positive number multiplies the dataset byte
// sizes (e.g. FREQDEDUP_SCALE=4 quadruples every workload); attack cost
// grows roughly linearly with scale.
func Generate() Datasets {
	genOnce.Do(func() {
		scale := 1.0
		if v := os.Getenv("FREQDEDUP_SCALE"); v != "" {
			if f, err := strconv.ParseFloat(v, 64); err == nil && f > 0 {
				scale = f
			}
		}
		fsl := trace.DefaultFSLParams()
		fsl.PerUserBytes = int(float64(fsl.PerUserBytes) * scale)
		syn := trace.DefaultSyntheticParams()
		syn.InitialBytes = int(float64(syn.InitialBytes) * scale)
		syn.NewDataBytes = int(float64(syn.NewDataBytes) * scale)
		vm := trace.DefaultVMParams()
		vm.BaseImageBytes = int(float64(vm.BaseImageBytes) * scale)
		genData = Datasets{
			FSL:       trace.GenerateFSL(fsl),
			Synthetic: trace.GenerateSynthetic(syn),
			VM:        trace.GenerateVM(vm),
		}
	})
	return genData
}

// attackKind selects one of the three attacks for the figure runners.
type attackKind int

const (
	attackBasic attackKind = iota + 1
	attackLocality
	attackAdvanced
)

func (k attackKind) String() string {
	switch k {
	case attackBasic:
		return "Basic"
	case attackLocality:
		return "Locality"
	case attackAdvanced:
		return "Advanced"
	default:
		return fmt.Sprintf("attackKind(%d)", int(k))
	}
}

// defaultW is the inferred-set bound used by the attack evaluation. The
// paper uses w=200,000, at which Figure 4(c) shows the inference rate has
// plateaued; the same value never binds at our scale, placing us in the
// same plateau regime.
const defaultW = 200000

// kpW is the larger bound used in known-plaintext mode (Section 5.3.3).
const kpW = 500000

// mleCache memoizes MLE encryption of target backups: many figures attack
// the same encrypted target.
var (
	mleMu    sync.Mutex
	mleCache = map[*trace.Backup]defense.Encrypted{}
)

func encryptMLE(b *trace.Backup) defense.Encrypted {
	mleMu.Lock()
	defer mleMu.Unlock()
	if e, ok := mleCache[b]; ok {
		return e
	}
	e := defense.EncryptMLE(b)
	mleCache[b] = e
	return e
}

// attackFor builds the streaming-engine attack for a figure runner's
// (kind, config) selection.
func attackFor(kind attackKind, cfg attack.Config) attack.Attack {
	switch kind {
	case attackBasic:
		return attack.NewBasic(cfg)
	case attackAdvanced:
		return attack.NewAdvanced(cfg)
	default:
		return attack.NewLocality(cfg)
	}
}

// runAttackOn runs the selected attack against an encrypted target stream
// through the streaming engine and returns the inference rate. Engine
// defaults (Params{}) are used: results are bit-identical at every shard
// and worker count, so the figures do not depend on the machine.
func runAttackOn(kind attackKind, aux *trace.Backup, enc defense.Encrypted, cfg attack.Config) float64 {
	res, err := attackFor(kind, cfg).Run(attack.BackupSource(enc.Backup), attack.BackupSource(aux), attack.Params{})
	if err != nil {
		// In-memory sources cannot fail; an error here is a programming
		// bug in the runner, not an experiment outcome.
		panic(err)
	}
	return res.InferenceRate(enc.Truth)
}

// runAttack encrypts the target with baseline MLE and runs the selected
// attack against the given auxiliary backup, returning the inference rate.
func runAttack(kind attackKind, aux, target *trace.Backup, cfg attack.Config) float64 {
	return runAttackOn(kind, aux, encryptMLE(target), cfg)
}

// ctOnlyConfig returns the paper's default ciphertext-only parameters
// (u=1, v=15, w=200,000).
func ctOnlyConfig() attack.Config {
	return attack.Config{U: 1, V: 15, W: defaultW, Mode: attack.CiphertextOnly}
}

// kpConfig returns known-plaintext parameters with the given leaked pairs.
func kpConfig(leaked []attack.Pair) attack.Config {
	return attack.Config{U: 1, V: 15, W: kpW, Mode: attack.KnownPlaintext, Leaked: leaked}
}

// leakFor draws the leaked pairs for a target under baseline MLE at the
// given leakage rate (deterministic per rate).
func leakFor(target *trace.Backup, rate float64) []attack.Pair {
	enc := encryptMLE(target)
	return attack.SampleLeaked(enc.Backup, enc.Truth, rate, int64(rate*1e6)+17)
}
