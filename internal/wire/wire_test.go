package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"freqdedup/internal/fphash"
	"freqdedup/internal/mle"
	"freqdedup/internal/trace"
)

// pipeConn is an in-memory ReadWriter: writes land in the buffer reads
// drain.
type pipeConn struct{ bytes.Buffer }

func roundTrip(t *testing.T, typ uint32, payload []byte) []byte {
	t.Helper()
	var p pipeConn
	c := NewConn(&p)
	if err := c.Send(typ, payload); err != nil {
		t.Fatalf("Send: %v", err)
	}
	gotType, gotPayload, err := c.Recv()
	if err != nil {
		t.Fatalf("Recv: %v", err)
	}
	if gotType != typ {
		t.Fatalf("type = %d, want %d", gotType, typ)
	}
	if !bytes.Equal(gotPayload, payload) {
		t.Fatalf("payload mismatch: got %d bytes, want %d", len(gotPayload), len(payload))
	}
	return gotPayload
}

func TestFrameRoundTrip(t *testing.T) {
	roundTrip(t, THello, []byte("payload"))
	roundTrip(t, TBackupReady, nil)
	roundTrip(t, TRestoreData, bytes.Repeat([]byte{0xab}, 1<<20))
}

func TestFrameCorruption(t *testing.T) {
	var p pipeConn
	c := NewConn(&p)
	if err := c.Send(TWindowAck, AppendSeq(nil, 7)); err != nil {
		t.Fatal(err)
	}
	raw := p.Bytes()

	for _, tc := range []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"bad magic", func(b []byte) []byte { b[0] ^= 0xff; return b }},
		{"payload bit flip", func(b []byte) []byte { b[HeaderLen] ^= 0x01; return b }},
		{"crc bit flip", func(b []byte) []byte { b[len(b)-1] ^= 0x01; return b }},
		{"oversized length", func(b []byte) []byte {
			b[8], b[9], b[10], b[11] = 0xff, 0xff, 0xff, 0xff
			return b
		}},
	} {
		buf := tc.mutate(append([]byte(nil), raw...))
		_, _, err := NewConn(bytes.NewBuffer(buf)).Recv()
		if !errors.Is(err, ErrCorruptFrame) {
			t.Errorf("%s: err = %v, want ErrCorruptFrame", tc.name, err)
		}
	}

	// Truncation mid-payload is an I/O error, not silent success.
	if _, _, err := NewConn(bytes.NewBuffer(raw[:len(raw)-2])).Recv(); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("truncated frame: err = %v, want ErrUnexpectedEOF", err)
	}
}

func TestHelloRoundTrip(t *testing.T) {
	in := Hello{Version: Version, Tenant: "alice", Token: []byte("s3cret")}
	p, err := AppendHello(nil, in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ParseHello(p)
	if err != nil {
		t.Fatal(err)
	}
	if out.Version != in.Version || out.Tenant != in.Tenant || !bytes.Equal(out.Token, in.Token) {
		t.Fatalf("got %+v, want %+v", out, in)
	}
	if _, err := AppendHello(nil, Hello{Tenant: ""}); err == nil {
		t.Error("empty tenant accepted")
	}
}

func TestNegotiateRoundTrip(t *testing.T) {
	refs := make([]trace.ChunkRef, 300)
	for i := range refs {
		refs[i] = trace.ChunkRef{FP: fphash.FromBytes([]byte{byte(i), byte(i >> 8)}), Size: uint32(1000 + i)}
	}
	p := AppendNegotiate(nil, 42, refs)
	seq, got, err := ParseNegotiate(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 42 || len(got) != len(refs) {
		t.Fatalf("seq=%d len=%d", seq, len(got))
	}
	for i := range refs {
		if got[i] != refs[i] {
			t.Fatalf("ref %d: got %+v, want %+v", i, got[i], refs[i])
		}
	}
	// Count/length mismatch must be rejected.
	if _, _, err := ParseNegotiate(p[:len(p)-4], nil); err == nil {
		t.Error("truncated negotiate accepted")
	}
}

func TestNegotiateReplyRoundTrip(t *testing.T) {
	for _, n := range []int{1, 7, 8, 9, 300} {
		miss := make([]bool, n)
		for i := range miss {
			miss[i] = i%3 == 0
		}
		p := AppendNegotiateReply(nil, 9, miss)
		seq, got, err := ParseNegotiateReply(p, nil)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if seq != 9 || len(got) != n {
			t.Fatalf("n=%d: seq=%d len=%d", n, seq, len(got))
		}
		for i := range miss {
			if got[i] != miss[i] {
				t.Fatalf("n=%d: bit %d = %v, want %v", n, i, got[i], miss[i])
			}
		}
	}
}

func TestChunkDataRoundTrip(t *testing.T) {
	chunks := [][]byte{[]byte("alpha"), {}, bytes.Repeat([]byte{7}, 9000)}
	p := AppendChunkData(nil, 3, chunks)
	seq, got, err := ParseChunkData(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 3 || len(got) != len(chunks) {
		t.Fatalf("seq=%d len=%d", seq, len(got))
	}
	for i := range chunks {
		if !bytes.Equal(got[i], chunks[i]) {
			t.Fatalf("chunk %d mismatch", i)
		}
	}
}

func TestCommitRoundTrip(t *testing.T) {
	entries := make([]mle.RecipeEntry, 50)
	for i := range entries {
		entries[i] = mle.RecipeEntry{
			Fingerprint: fphash.FromBytes([]byte{byte(i)}),
			Key:         mle.ConvergentKey([]byte{byte(i), 1}),
			Size:        uint32(100 * i),
		}
	}
	p, err := AppendCommit(nil, entries)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseCommit(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(entries) {
		t.Fatalf("len = %d, want %d", len(got), len(entries))
	}
	for i := range entries {
		if got[i] != entries[i] {
			t.Fatalf("entry %d: got %+v, want %+v", i, got[i], entries[i])
		}
	}
}

func TestSnapshotListRoundTrip(t *testing.T) {
	list := []SnapshotInfo{
		{Name: "daily/mon", CreatedUnix: 1754600000, LogicalBytes: 1 << 30, Chunks: 12345},
		{Name: "x", CreatedUnix: 1, LogicalBytes: 2, Chunks: 3},
	}
	got, err := ParseSnapshotList(AppendSnapshotList(nil, list))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(list) {
		t.Fatalf("len = %d, want %d", len(got), len(list))
	}
	for i := range list {
		if got[i] != list[i] {
			t.Fatalf("entry %d: got %+v, want %+v", i, got[i], list[i])
		}
	}
}

func TestTenantUsageRoundTrip(t *testing.T) {
	in := TenantUsage{
		Tenant: "bob", Snapshots: 4,
		LogicalBytes: 10, StoredBytes: 20,
		ExclusiveChunks: 30, ExclusiveBytes: 40,
		SharedChunks: 50, SharedBytes: 60,
	}
	got, err := ParseTenantUsage(AppendTenantUsage(nil, in))
	if err != nil {
		t.Fatal(err)
	}
	if got != in {
		t.Fatalf("got %+v, want %+v", got, in)
	}
}

func TestErrorRoundTrip(t *testing.T) {
	e, err := ParseError(AppendError(nil, CodeNotFound, "no such snapshot"))
	if err != nil {
		t.Fatal(err)
	}
	if e.Code != CodeNotFound || e.Msg != "no such snapshot" {
		t.Fatalf("got %+v", e)
	}
	// Overlong messages truncate instead of failing the error path.
	long := string(bytes.Repeat([]byte{'x'}, 1000))
	if e, err = ParseError(AppendError(nil, CodeInternal, long)); err != nil {
		t.Fatal(err)
	}
	if len(e.Msg) != MaxName {
		t.Fatalf("len(msg) = %d, want %d", len(e.Msg), MaxName)
	}
}

func TestTrailingBytesRejected(t *testing.T) {
	p := AppendSeq(nil, 1)
	p = append(p, 0xee)
	if _, err := ParseSeq(p); err == nil {
		t.Error("trailing bytes accepted")
	}
}
