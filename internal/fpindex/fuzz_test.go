package fpindex

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"freqdedup/internal/bloom"
	"freqdedup/internal/container"
	"freqdedup/internal/fphash"
	"freqdedup/internal/vfs"
)

// buildSeedRun writes a valid two-block run file and returns its bytes.
func buildSeedRun(t testing.TB) []byte {
	t.Helper()
	dir := t.TempDir()
	ps := make([]Posting, blockEntries+100)
	for i := range ps {
		ps[i] = Posting{FP: fphash.FromUint64(uint64(i)*7919 + 3), Loc: container.Location{Container: i / 64, Index: i % 64}}
	}
	sortPostings(ps)
	r, err := writeRun(vfs.OS, dir, 0, 1, 0, &sliceSource{ps: ps})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, runFileName(0, 1)))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// FuzzRunFile feeds arbitrary bytes to the run-file codec. The contract
// under attack: openRun plus every subsequent read either succeeds with
// exactly the postings a valid file holds, or fails with ErrCorrupt (or
// an I/O error) — truncation, bit flips, and forged counts must never
// produce a wrong Location or a panic.
func FuzzRunFile(f *testing.F) {
	seed := buildSeedRun(f)
	f.Add(seed, uint16(0), byte(0))
	f.Add(seed, uint16(len(seed)/2), byte(0x01))       // flip a bit mid-file
	f.Add(seed, uint16(len(seed)-5), byte(0x80))       // damage the footer
	f.Add(seed[:len(seed)/3], uint16(0), byte(0))      // truncated
	f.Add(seed[:runHeaderLen+10], uint16(16), byte(1)) // forged header count
	f.Add([]byte("FDI1 not really an index"), uint16(2), byte(4))

	// Reference locations from the intact seed: fp -> loc.
	want := map[fphash.Fingerprint]container.Location{}
	{
		dir := f.TempDir()
		if err := os.WriteFile(filepath.Join(dir, runFileName(0, 1)), seed, 0o644); err != nil {
			f.Fatal(err)
		}
		r, err := openRun(vfs.OS, dir, 0, 1, 0, 0)
		if err != nil {
			f.Fatal(err)
		}
		if err := r.iterate(func(p Posting) error { want[p.FP] = p.Loc; return nil }); err != nil {
			f.Fatal(err)
		}
		r.close()
	}

	f.Fuzz(func(t *testing.T, data []byte, pos uint16, mask byte) {
		if len(data) > 1<<20 {
			t.Skip()
		}
		mut := append([]byte(nil), data...)
		if len(mut) > 0 {
			mut[int(pos)%len(mut)] ^= mask
		}
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, runFileName(0, 7)), mut, 0o644); err != nil {
			t.Fatal(err)
		}
		r, err := openRun(vfs.OS, dir, 0, 7, 0, 0)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) && !errors.Is(err, bloom.ErrCodec) && !isIOError(err) {
				t.Fatalf("openRun failed with unexpected error class: %v", err)
			}
			return
		}
		defer r.close()
		// The file opened: every posting it serves must agree with the
		// reference map (openRun succeeding on bytes that decode to other
		// postings is fine only if those postings were in a valid file —
		// the mutation must not smuggle a wrong Location past the CRCs).
		err = r.iterate(func(p Posting) error {
			if loc, ok := want[p.FP]; ok && loc != p.Loc {
				t.Fatalf("corrupt file served wrong location for %v: %v, want %v", p.FP, p.Loc, loc)
			}
			return nil
		})
		if err != nil && !errors.Is(err, ErrCorrupt) && !isIOError(err) {
			t.Fatalf("iterate failed with unexpected error class: %v", err)
		}
		// Spot lookups must be consistent too.
		for fp, loc := range want {
			got, ok, lerr := lookupRun(r, fp)
			if lerr != nil {
				break // detected corruption: acceptable
			}
			if ok && got != loc {
				t.Fatalf("corrupt file answered %v for %v, want %v", got, fp, loc)
			}
			break // one spot check per input keeps the fuzzer fast
		}
	})
}

// lookupRun searches one run directly (test helper mirroring the shard
// lookup path without the cache).
func lookupRun(r *run, fp fphash.Fingerprint) (container.Location, bool, error) {
	if !r.filter.Contains(fp) {
		return container.Location{}, false, nil
	}
	bi := r.findBlock(fp)
	if bi < 0 {
		return container.Location{}, false, nil
	}
	block, err := r.readBlock(bi)
	if err != nil {
		return container.Location{}, false, err
	}
	loc, ok := searchBlock(block, fp)
	return loc, ok, nil
}

// isIOError reports whether err is a plain I/O failure (short read on a
// truncated file) rather than a validation failure.
func isIOError(err error) bool {
	return errors.Is(err, os.ErrNotExist) || errors.Is(err, os.ErrInvalid) ||
		errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF)
}
