package dedup

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"freqdedup/internal/container"
	"freqdedup/internal/mle"
)

// restoreModes enumerates every Config encryption/defense mode, as the
// acceptance matrix requires.
func restoreModes(t *testing.T) map[string]Config {
	t.Helper()
	deriver := mle.NewLocalDeriver([]byte("restore-test-secret"))
	return map[string]Config{
		"convergent":  {},
		"serverAided": {Encryption: EncServerAided, Deriver: deriver},
		"minhash":     {Encryption: EncMinHash, Deriver: deriver},
		"scramble":    {Scramble: true, ScrambleSeed: 7},
	}
}

// TestParallelRestoreMatchesSerial is the pipeline's bit-for-bit
// guarantee: for every Config mode, the parallel restore pipeline
// produces output identical to the serial chunk-at-a-time restore — and
// to the original stream — at workers ∈ {1, 4, 16} and container cache
// sizes ∈ {0, 1, 64}. Run under -race, it is also the pipeline's
// concurrency proof.
func TestParallelRestoreMatchesSerial(t *testing.T) {
	data := randData(91, 1<<20)
	for mode, cfg := range restoreModes(t) {
		t.Run(mode, func(t *testing.T) {
			// Small containers so the recipe spans many of them and the
			// read plan has real batch structure.
			store := NewStoreWithShards(32<<10, DefaultShards)
			cfg := cfg
			cfg.Workers = 4
			client, err := NewClient(store, cfg)
			if err != nil {
				t.Fatal(err)
			}
			recipe, err := client.Backup(bytes.NewReader(data))
			if err != nil {
				t.Fatal(err)
			}
			var serial bytes.Buffer
			if err := client.restoreSerial(context.Background(), recipe, &serial); err != nil {
				t.Fatalf("serial restore: %v", err)
			}
			if !bytes.Equal(serial.Bytes(), data) {
				t.Fatal("serial restore does not reproduce the original stream")
			}
			for _, workers := range []int{1, 4, 16} {
				for _, cacheSize := range []int{0, 1, 64} {
					t.Run(fmt.Sprintf("workers=%d/cache=%d", workers, cacheSize), func(t *testing.T) {
						rcfg := cfg
						rcfg.Workers = workers
						rcfg.RestoreCacheContainers = cacheSize
						rc, err := NewClient(store, rcfg)
						if err != nil {
							t.Fatal(err)
						}
						var out bytes.Buffer
						if err := rc.restoreParallel(context.Background(), recipe, &out); err != nil {
							t.Fatalf("parallel restore: %v", err)
						}
						if !bytes.Equal(out.Bytes(), serial.Bytes()) {
							t.Fatal("parallel restore differs from serial restore")
						}
					})
				}
			}
		})
	}
}

// TestRestoreDispatch checks the public Restore entry point in both its
// regimes: the serial fast path (workers=1, no cache) and the pipeline.
func TestRestoreDispatch(t *testing.T) {
	data := randData(92, 512<<10)
	store := NewStoreWithShards(32<<10, 4)
	client, err := NewClient(store, Config{Workers: 2, RestoreCacheContainers: 8})
	if err != nil {
		t.Fatal(err)
	}
	recipe, err := client.Backup(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []Config{
		{Workers: 1},                            // serial path
		{Workers: 0, RestoreCacheContainers: 8}, // pipeline, GOMAXPROCS workers
		{Workers: 1, RestoreCacheContainers: 1}, // pipeline, single worker
	} {
		rc, err := NewClient(store, cfg)
		if err != nil {
			t.Fatal(err)
		}
		var out bytes.Buffer
		if err := rc.Restore(recipe, &out); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out.Bytes(), data) {
			t.Fatalf("Restore with %+v mismatched", cfg)
		}
	}
}

// TestFileBackedRestoreAfterReopen proves the persistence round trip of
// the acceptance criteria: backup into a file-backed store, close the
// process's store object, Open the directory again, and restore the same
// bytes through the parallel pipeline.
func TestFileBackedRestoreAfterReopen(t *testing.T) {
	dir := t.TempDir()
	data := randData(93, 1<<20)

	store, err := Create(dir, 32<<10, 8)
	if err != nil {
		t.Fatal(err)
	}
	client, err := NewClient(store, Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	recipe, err := client.Backup(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	beforeUnique := store.UniqueChunks()
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	reopened, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	if got := reopened.UniqueChunks(); got != beforeUnique {
		t.Fatalf("reopened store has %d unique chunks, want %d", got, beforeUnique)
	}
	for _, cfg := range []Config{
		{Workers: 1},                             // serial
		{Workers: 4, RestoreCacheContainers: 16}, // pipeline
	} {
		rc, err := NewClient(reopened, cfg)
		if err != nil {
			t.Fatal(err)
		}
		var out bytes.Buffer
		if err := rc.Restore(recipe, &out); err != nil {
			t.Fatalf("restore after reopen (%+v): %v", cfg, err)
		}
		if !bytes.Equal(out.Bytes(), data) {
			t.Fatalf("reopened restore mismatched (%+v)", cfg)
		}
	}
	// Dedup against the reopened index: re-backing-up the same stream
	// must store nothing new.
	rc, err := NewClient(reopened, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rc.Backup(bytes.NewReader(data)); err != nil {
		t.Fatal(err)
	}
	if got := reopened.UniqueChunks(); got != beforeUnique {
		t.Fatalf("re-backup after reopen stored %d new chunks", got-beforeUnique)
	}
}

// TestFileBackedGCThenRestore exercises the GC sweep's rewrite through
// the file backend: expire one of two backups, GC, reopen, and restore
// the survivor.
func TestFileBackedGCThenRestore(t *testing.T) {
	dir := t.TempDir()
	store, err := Create(dir, 32<<10, 4)
	if err != nil {
		t.Fatal(err)
	}
	client, err := NewClient(store, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	v1 := randData(94, 512<<10)
	v2 := mutate(v1, 95)
	r1, err := client.Backup(bytes.NewReader(v1))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := client.Backup(bytes.NewReader(v2))
	if err != nil {
		t.Fatal(err)
	}
	if err := store.RegisterBackup("b1", r1); err != nil {
		t.Fatal(err)
	}
	if err := store.RegisterBackup("b2", r2); err != nil {
		t.Fatal(err)
	}
	if err := store.DeleteBackup("b1"); err != nil {
		t.Fatal(err)
	}
	st, err := store.GC()
	if err != nil {
		t.Fatalf("GC through file backend: %v", err)
	}
	if st.ChunksReclaimed == 0 {
		t.Fatal("GC reclaimed nothing")
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	reopened, err := Open(dir)
	if err != nil {
		t.Fatalf("open after GC rewrite: %v", err)
	}
	defer reopened.Close()
	rc, err := NewClient(reopened, Config{Workers: 4, RestoreCacheContainers: 8})
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := rc.Restore(r2, &out); err != nil {
		t.Fatalf("survivor restore after GC+reopen: %v", err)
	}
	if !bytes.Equal(out.Bytes(), v2) {
		t.Fatal("survivor restore mismatched after GC+reopen")
	}
}

// corruptShardFile flips one byte inside the data region of the given
// shard file's first record.
func corruptShardFile(t *testing.T, dir string, shard int) {
	t.Helper()
	name := filepath.Join(dir, fmt.Sprintf("shard-%04d.fdc", shard))
	raw, err := os.ReadFile(name)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) < 64 {
		t.Fatalf("shard file %s too small to corrupt meaningfully", name)
	}
	raw[len(raw)-10] ^= 0xff
	if err := os.WriteFile(name, raw, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestRestoreCorruptContainerOnDisk flips a byte in a persisted container
// and checks that both restore paths surface container.ErrCorrupt instead
// of returning wrong bytes.
func TestRestoreCorruptContainerOnDisk(t *testing.T) {
	dir := t.TempDir()
	data := randData(96, 256<<10)
	store, err := Create(dir, 32<<10, 1)
	if err != nil {
		t.Fatal(err)
	}
	client, err := NewClient(store, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	recipe, err := client.Backup(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	corruptShardFile(t, dir, 0)

	reopened, err := Open(dir)
	if err != nil {
		t.Fatalf("Open validates structure only, should succeed: %v", err)
	}
	defer reopened.Close()
	for _, cfg := range []Config{
		{Workers: 1},                            // serial
		{Workers: 4, RestoreCacheContainers: 4}, // pipeline
	} {
		rc, err := NewClient(reopened, cfg)
		if err != nil {
			t.Fatal(err)
		}
		var out bytes.Buffer
		err = rc.Restore(recipe, &out)
		if err == nil {
			t.Fatalf("restore of corrupted store succeeded (%+v)", cfg)
		}
		if !errors.Is(err, container.ErrCorrupt) {
			t.Fatalf("restore error %v, want container.ErrCorrupt", err)
		}
	}
}

// TestOpenTruncatedStoreDir covers Open's two truncation regimes: a torn
// record tail is recovered (losing only the unacknowledged container,
// which restore then reports as a missing chunk), while a file truncated
// into its header is structural corruption and refuses to open.
func TestOpenTruncatedStoreDir(t *testing.T) {
	dir := t.TempDir()
	data := randData(97, 256<<10)
	store, err := Create(dir, 32<<10, 1)
	if err != nil {
		t.Fatal(err)
	}
	client, err := NewClient(store, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	recipe, err := client.Backup(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	name := filepath.Join(dir, "shard-0000.fdc")
	st, err := os.Stat(name)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(name, st.Size()-25); err != nil {
		t.Fatal(err)
	}
	reopened, err := Open(dir)
	if err != nil {
		t.Fatalf("open after torn tail should recover: %v", err)
	}
	rc, err := NewClient(reopened, Config{Workers: 4, RestoreCacheContainers: 4})
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := rc.Restore(recipe, &out); !errors.Is(err, ErrNotFound) {
		t.Fatalf("restore with a truncated container: %v, want ErrNotFound", err)
	}
	reopened.Close()

	// Truncating into the file header is not recoverable.
	if err := os.Truncate(name, 8); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); !errors.Is(err, container.ErrCorrupt) {
		t.Fatalf("Open of truncated header: %v, want container.ErrCorrupt", err)
	}
}

// failAfterWriter fails with errBoom once n bytes have been written.
type failAfterWriter struct {
	n       int
	written int
}

var errBoom = errors.New("boom")

func (w *failAfterWriter) Write(p []byte) (int, error) {
	if w.written+len(p) > w.n {
		return 0, errBoom
	}
	w.written += len(p)
	return len(p), nil
}

// TestRestoreWriterErrorReleasesPooledBuffers mirrors the backup
// pipeline's drain-on-error contract: a mid-restore writer failure must
// stop the pipeline, propagate the error, and hand every pooled plaintext
// buffer back (in-flight batches included).
func TestRestoreWriterErrorReleasesPooledBuffers(t *testing.T) {
	data := randData(98, 1<<20)
	store := NewStoreWithShards(32<<10, DefaultShards)
	client, err := NewClient(store, Config{Workers: 8, RestoreCacheContainers: 4})
	if err != nil {
		t.Fatal(err)
	}
	recipe, err := client.Backup(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	baseline := restoreBufsOutstanding.Load()
	for _, failAt := range []int{0, 100, 128 << 10, 768 << 10} {
		err := client.Restore(recipe, &failAfterWriter{n: failAt})
		if !errors.Is(err, errBoom) {
			t.Fatalf("restore with writer failing at %d: %v, want errBoom", failAt, err)
		}
		if got := restoreBufsOutstanding.Load(); got != baseline {
			t.Fatalf("failAt=%d: %d pooled restore buffers outstanding, want %d",
				failAt, got, baseline)
		}
	}
	// And a clean restore still works afterwards, reusing the pool.
	var out bytes.Buffer
	if err := client.Restore(recipe, &out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), data) {
		t.Fatal("restore after writer-error drains mismatched")
	}
	if got := restoreBufsOutstanding.Load(); got != baseline {
		t.Fatalf("%d pooled restore buffers outstanding after clean restore", got)
	}
}

// TestRestoreMissingChunkParallel: a recipe referencing an unknown
// fingerprint fails the plan with ErrNotFound before any worker runs.
func TestRestoreMissingChunkParallel(t *testing.T) {
	store := NewStore(0)
	client, err := NewClient(store, Config{Workers: 4, RestoreCacheContainers: 4})
	if err != nil {
		t.Fatal(err)
	}
	recipe := &mle.Recipe{Entries: []mle.RecipeEntry{{
		Fingerprint: [8]byte{1, 2, 3},
		Size:        16,
	}}}
	var out bytes.Buffer
	if err := client.Restore(recipe, &out); !errors.Is(err, ErrNotFound) {
		t.Fatalf("restore of unknown chunk: %v, want ErrNotFound", err)
	}
}

// TestRestoreConcurrentWithGC restores a registered backup while GC
// passes reclaim interleaved garbage and compact the shards underneath
// it: planned locations go stale and planned containers can vanish
// mid-restore, exercising the fingerprint-verified fallback paths.
func TestRestoreConcurrentWithGC(t *testing.T) {
	store := NewStoreWithShards(16<<10, DefaultShards)
	client, err := NewClient(store, Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	data := randData(100, 512<<10)
	recipe, err := client.Backup(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if err := store.RegisterBackup("keep", recipe); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	churnDone := make(chan error, 1)
	go func() {
		defer close(churnDone)
		for i := int64(0); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			// Fresh unregistered garbage, then a GC that reclaims it —
			// every pass rewrites containers and moves live locations.
			gcClient, err := NewClient(store, Config{Workers: 1})
			if err != nil {
				churnDone <- err
				return
			}
			if _, err := gcClient.Backup(bytes.NewReader(randData(2000+i, 128<<10))); err != nil {
				churnDone <- err
				return
			}
			if _, err := store.GC(); err != nil {
				churnDone <- err
				return
			}
		}
	}()
	for i := 0; i < 8; i++ {
		rc, err := NewClient(store, Config{Workers: 4, RestoreCacheContainers: 4})
		if err != nil {
			t.Fatal(err)
		}
		var out bytes.Buffer
		if err := rc.Restore(recipe, &out); err != nil {
			t.Fatalf("restore %d concurrent with GC: %v", i, err)
		}
		if !bytes.Equal(out.Bytes(), data) {
			t.Fatalf("restore %d mismatched under concurrent GC", i)
		}
	}
	close(stop)
	if err := <-churnDone; err != nil {
		t.Fatal(err)
	}
}

// TestRestoreConcurrentWithBackups runs restores while other clients
// append to the same store — open containers seal mid-restore — proving
// the locate/read race handling under -race.
func TestRestoreConcurrentWithBackups(t *testing.T) {
	store := NewStoreWithShards(32<<10, DefaultShards)
	data := randData(99, 512<<10)
	client, err := NewClient(store, Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	recipe, err := client.Backup(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	writerDone := make(chan error, 1)
	go func() {
		defer close(writerDone)
		for i := int64(0); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			wc, err := NewClient(store, Config{Workers: 2})
			if err != nil {
				writerDone <- err
				return
			}
			if _, err := wc.Backup(bytes.NewReader(randData(1000+i, 64<<10))); err != nil {
				writerDone <- err
				return
			}
		}
	}()
	for i := 0; i < 5; i++ {
		rc, err := NewClient(store, Config{Workers: 4, RestoreCacheContainers: 8})
		if err != nil {
			t.Fatal(err)
		}
		var out bytes.Buffer
		if err := rc.Restore(recipe, &out); err != nil {
			t.Fatalf("restore %d concurrent with backups: %v", i, err)
		}
		if !bytes.Equal(out.Bytes(), data) {
			t.Fatalf("restore %d mismatched under concurrent backups", i)
		}
	}
	close(stop)
	if err := <-writerDone; err != nil {
		t.Fatal(err)
	}
}
