package defense

import (
	"math/rand"
	"testing"

	"freqdedup/internal/core"
	"freqdedup/internal/fphash"
	"freqdedup/internal/trace"
)

func synthetic(t *testing.T) *trace.Dataset {
	t.Helper()
	p := trace.DefaultSyntheticParams()
	p.InitialBytes = 6 << 20
	p.MeanFileBytes = 48 << 10
	p.NewDataBytes = 64 << 10
	p.Snapshots = 4
	return trace.GenerateSynthetic(p)
}

func TestEncryptMLEDeterministicMapping(t *testing.T) {
	d := synthetic(t)
	b := d.Backups[0]
	enc1 := EncryptMLE(b)
	enc2 := EncryptMLE(b)
	if len(enc1.Backup.Chunks) != len(b.Chunks) {
		t.Fatal("MLE changed chunk count")
	}
	for i := range enc1.Backup.Chunks {
		if enc1.Backup.Chunks[i] != enc2.Backup.Chunks[i] {
			t.Fatal("MLE encryption not deterministic")
		}
		if enc1.Backup.Chunks[i].Size != b.Chunks[i].Size {
			t.Fatal("MLE changed a chunk size")
		}
		if enc1.Backup.Chunks[i].FP == b.Chunks[i].FP {
			t.Fatal("ciphertext fingerprint equals plaintext fingerprint")
		}
	}
}

func TestEncryptMLETruth(t *testing.T) {
	b := synthetic(t).Backups[0]
	enc := EncryptMLE(b)
	for i, c := range enc.Backup.Chunks {
		if enc.Truth[c.FP] != b.Chunks[i].FP {
			t.Fatalf("ground truth wrong at chunk %d", i)
		}
	}
	// One-to-one at the unique-chunk level: same plaintext -> same
	// ciphertext, distinct plaintexts -> distinct ciphertexts.
	fwd := make(map[fphash.Fingerprint]fphash.Fingerprint)
	for i, c := range enc.Backup.Chunks {
		p := b.Chunks[i].FP
		if prev, ok := fwd[p]; ok && prev != c.FP {
			t.Fatal("same plaintext mapped to two ciphertexts under MLE")
		}
		fwd[p] = c.FP
	}
	if len(fwd) != len(enc.Truth) {
		t.Fatal("MLE mapping not injective over unique chunks")
	}
}

func TestEncryptMLEPreservesFrequencies(t *testing.T) {
	// The core leak the paper exploits: MLE preserves the frequency
	// distribution exactly.
	b := synthetic(t).Backups[0]
	enc := EncryptMLE(b)
	pf := b.Frequencies()
	cf := enc.Backup.Frequencies()
	if len(pf) != len(cf) {
		t.Fatal("unique counts differ")
	}
	for cfp, n := range cf {
		if pf[enc.Truth[cfp]] != n {
			t.Fatal("frequency not preserved through MLE")
		}
	}
}

func TestMinHashPreservesMostDedup(t *testing.T) {
	d := synthetic(t)
	opt := DefaultOptions()
	opt.Scramble = false
	a, err := EncryptMinHash(d.Backups[2], opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EncryptMinHash(d.Backups[3], opt)
	if err != nil {
		t.Fatal(err)
	}
	// Consecutive synthetic snapshots share >90% of plaintext chunks; the
	// ciphertext streams must still share the large majority (Broder), but
	// strictly less than plain MLE would.
	af := a.Backup.Frequencies()
	var shared, total int
	for fp := range b.Backup.Frequencies() {
		total++
		if _, ok := af[fp]; ok {
			shared++
		}
	}
	frac := float64(shared) / float64(total)
	if frac < 0.6 {
		t.Fatalf("MinHash destroyed dedup: cross-backup ciphertext overlap %.2f", frac)
	}
	if frac > 0.999 {
		t.Fatalf("MinHash changed nothing: overlap %.3f", frac)
	}
}

func TestMinHashPerturbsFrequencies(t *testing.T) {
	b := synthetic(t).Backups[0]
	opt := DefaultOptions()
	opt.Scramble = false
	enc, err := EncryptMinHash(b, opt)
	if err != nil {
		t.Fatal(err)
	}
	// Some plaintext chunks must now map to more than one ciphertext chunk
	// (different segment minima).
	variants := make(map[fphash.Fingerprint]map[fphash.Fingerprint]bool)
	for cfp, pfp := range enc.Truth {
		if variants[pfp] == nil {
			variants[pfp] = make(map[fphash.Fingerprint]bool)
		}
		variants[pfp][cfp] = true
	}
	var split int
	for _, v := range variants {
		if len(v) > 1 {
			split++
		}
	}
	if split == 0 {
		t.Fatal("MinHash encryption never split a plaintext chunk; frequency ranking unchanged")
	}
}

func TestScramblePreservesMultiset(t *testing.T) {
	b := synthetic(t).Backups[0]
	enc, err := EncryptMinHash(b, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Under scrambling + MinHash, the plaintext multiset recovered through
	// ground truth must match the original backup's multiset exactly.
	got := make(map[fphash.Fingerprint]int)
	for _, c := range enc.Backup.Chunks {
		got[enc.Truth[c.FP]]++
	}
	want := b.Frequencies()
	if len(got) != len(want) {
		t.Fatalf("unique plaintexts %d, want %d", len(got), len(want))
	}
	for fp, n := range want {
		if got[fp] != n {
			t.Fatal("scrambling lost or duplicated chunks")
		}
	}
}

func TestScrambleChangesOrder(t *testing.T) {
	b := synthetic(t).Backups[0]
	opt := DefaultOptions()
	plain, err := EncryptMinHash(b, Options{Segments: opt.Segments, Scramble: false})
	if err != nil {
		t.Fatal(err)
	}
	scrambled, err := EncryptMinHash(b, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Backup.Chunks) != len(scrambled.Backup.Chunks) {
		t.Fatal("scrambling changed chunk count")
	}
	var moved int
	for i := range plain.Backup.Chunks {
		if plain.Truth[plain.Backup.Chunks[i].FP] != scrambled.Truth[scrambled.Backup.Chunks[i].FP] {
			moved++
		}
	}
	if frac := float64(moved) / float64(len(plain.Backup.Chunks)); frac < 0.3 {
		t.Fatalf("scrambling moved only %.2f of chunks", frac)
	}
}

func TestScrambleDeque(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	seg := make([]trace.ChunkRef, 64)
	for i := range seg {
		seg[i] = trace.ChunkRef{FP: fphash.FromUint64(uint64(i + 1)), Size: 1}
	}
	out := scramble(seg, rng)
	if len(out) != len(seg) {
		t.Fatal("scramble changed length")
	}
	seen := make(map[fphash.Fingerprint]bool)
	for _, c := range out {
		if seen[c.FP] {
			t.Fatal("scramble duplicated a chunk")
		}
		seen[c.FP] = true
	}
	// Algorithm 5 structure: chunks sent to the front appear in reverse
	// input order before the chunks sent to the back in input order. Verify
	// the output is such a front/back split of the input.
	if err := checkFrontBackSplit(seg, out); err != nil {
		t.Fatal(err)
	}
}

func checkFrontBackSplit(in, out []trace.ChunkRef) error {
	pos := make(map[fphash.Fingerprint]int, len(in))
	for i, c := range in {
		pos[c.FP] = i
	}
	// Find the pivot: the longest strictly-decreasing (by input position)
	// prefix of out is the reversed "front" half; the rest must be strictly
	// increasing.
	i := 1
	for i < len(out) && pos[out[i].FP] < pos[out[i-1].FP] {
		i++
	}
	for j := i + 1; j < len(out); j++ {
		if pos[out[j].FP] < pos[out[j-1].FP] {
			return errOrder
		}
	}
	return nil
}

var errOrder = &orderError{}

type orderError struct{}

func (*orderError) Error() string { return "output is not a front/back deque split of the input" }

func TestCombinedDefeatsLocalityAttack(t *testing.T) {
	d := synthetic(t)
	aux := d.Backups[len(d.Backups)-2]
	target := d.Backups[len(d.Backups)-1]

	cfg := core.DefaultLocalityConfig()
	cfg.W = 50000

	mle := EncryptMLE(target)
	mleRate := core.InferenceRate(core.LocalityAttack(mle.Backup, aux, cfg), mle.Truth, mle.Backup)

	comb, err := Encrypt(target, SchemeCombined, 99)
	if err != nil {
		t.Fatal(err)
	}
	combRate := core.InferenceRate(core.LocalityAttack(comb.Backup, aux, cfg), comb.Truth, comb.Backup)

	if mleRate < 0.02 {
		t.Fatalf("MLE baseline inference rate %.4f too low for a meaningful comparison", mleRate)
	}
	if combRate > mleRate/4 {
		t.Fatalf("combined defense ineffective: MLE %.4f vs combined %.4f", mleRate, combRate)
	}
}

func TestStorageSavingsShape(t *testing.T) {
	d := synthetic(t)
	mleSav, err := StorageSavings(d, SchemeMLE, 1)
	if err != nil {
		t.Fatal(err)
	}
	combSav, err := StorageSavings(d, SchemeCombined, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(mleSav) != len(d.Backups) || len(combSav) != len(d.Backups) {
		t.Fatal("savings length mismatch")
	}
	last := len(mleSav) - 1
	if mleSav[last] < 0.5 {
		t.Fatalf("MLE final saving %.2f too low for synthetic chain", mleSav[last])
	}
	if combSav[last] > mleSav[last] {
		t.Fatal("combined scheme cannot save more than exact dedup")
	}
	if mleSav[last]-combSav[last] > 0.10 {
		t.Fatalf("combined scheme lost too much saving: MLE %.3f vs combined %.3f",
			mleSav[last], combSav[last])
	}
}

func TestEncryptUnknownScheme(t *testing.T) {
	if _, err := Encrypt(&trace.Backup{}, Scheme(42), 1); err == nil {
		t.Fatal("unknown scheme should error")
	}
}

func TestSchemeString(t *testing.T) {
	if SchemeMLE.String() != "MLE" || SchemeMinHash.String() != "MinHash" || SchemeCombined.String() != "Combined" {
		t.Fatal("scheme strings wrong")
	}
	if Scheme(9).String() == "" {
		t.Fatal("unknown scheme should still print")
	}
}

func TestEncryptMinHashBadParams(t *testing.T) {
	b := synthetic(t).Backups[0]
	opt := DefaultOptions()
	opt.Segments.MinBytes = -1
	if _, err := EncryptMinHash(b, opt); err == nil {
		t.Fatal("invalid segment params should error")
	}
}
