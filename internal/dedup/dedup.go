package dedup

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"sync"

	"freqdedup/internal/chunker"
	"freqdedup/internal/fphash"
	"freqdedup/internal/mle"
	"freqdedup/internal/segment"
	"freqdedup/internal/trace"
)

// Encryption selects the client-side encryption pipeline.
type Encryption int

const (
	// EncConvergent encrypts each chunk under its content hash.
	EncConvergent Encryption = iota + 1
	// EncServerAided derives per-chunk keys from a key manager
	// (Config.Deriver).
	EncServerAided
	// EncMinHash derives one key per segment from the segment's minimum
	// fingerprint via Config.Deriver (Algorithm 4).
	EncMinHash
)

// Config configures a Client.
type Config struct {
	// Chunking parameters (chunker.DefaultParams if zero).
	Chunking chunker.Params
	// Encryption selects the MLE scheme (EncConvergent if zero).
	Encryption Encryption
	// Deriver supplies keys for EncServerAided and EncMinHash. It must be
	// safe for concurrent use when Workers != 1 (the key-manager client
	// and mle.NewLocalDeriver both are).
	Deriver mle.KeyDeriver
	// Segments configures segmentation for EncMinHash and Scramble
	// (segment.DefaultParams if zero).
	Segments segment.Params
	// Scramble enables per-segment upload-order scrambling (Algorithm 5).
	// Restores are unaffected: the recipe preserves original order.
	Scramble bool
	// ScrambleSeed seeds scrambling for reproducibility; 0 means a
	// time-independent fixed seed is NOT used — callers wanting
	// reproducibility must set it, otherwise a math/rand default source is
	// used per client.
	ScrambleSeed int64
	// Workers is the number of encrypt+fingerprint workers Backup fans
	// out to (the MLE hot path). 0 selects GOMAXPROCS; 1 runs the stage
	// inline. Recipes and store contents are identical for every worker
	// count: parallelism changes wall-clock time only.
	Workers int
}

// Client is the client side of Figure 2: chunk, encrypt, upload. A Client
// is not safe for concurrent use (its scrambling RNG is stateful); run one
// Client per goroutine against a shared Store instead — that is the
// multi-client architecture the store's sharding is built for.
type Client struct {
	cfg   Config
	store *Store
	rng   *rand.Rand
}

// NewClient returns a client uploading to store.
func NewClient(store *Store, cfg Config) (*Client, error) {
	if store == nil {
		return nil, errors.New("dedup: nil store")
	}
	if cfg.Chunking == (chunker.Params{}) {
		cfg.Chunking = chunker.DefaultParams()
	}
	if err := cfg.Chunking.Validate(); err != nil {
		return nil, err
	}
	if cfg.Encryption == 0 {
		cfg.Encryption = EncConvergent
	}
	if cfg.Segments == (segment.Params{}) {
		cfg.Segments = segment.DefaultParams()
	}
	if err := cfg.Segments.Validate(); err != nil {
		return nil, err
	}
	switch cfg.Encryption {
	case EncConvergent:
	case EncServerAided, EncMinHash:
		if cfg.Deriver == nil {
			return nil, mle.ErrNoKeyDeriver
		}
	default:
		return nil, fmt.Errorf("dedup: unknown encryption %d", cfg.Encryption)
	}
	if cfg.Workers < 0 {
		return nil, fmt.Errorf("dedup: negative worker count %d", cfg.Workers)
	}
	if cfg.Workers == 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	seed := cfg.ScrambleSeed
	if seed == 0 {
		seed = 0x5eed
	}
	return &Client{cfg: cfg, store: store, rng: rand.New(rand.NewSource(seed))}, nil
}

// uploadJob is one chunk's position in the upload plan: which chunk to
// encrypt and, for EncMinHash, the precomputed segment key.
type uploadJob struct {
	chunkIdx int
	segKey   mle.Key
}

// uploadResult is a worker's output for one job: the ciphertext chunk,
// its fingerprint, and the key that must go into the recipe.
type uploadResult struct {
	ct  []byte
	cfp fphash.Fingerprint
	key mle.Key
}

// Backup chunks, encrypts, and uploads the stream, returning the recipe
// needed to restore it. The recipe must be sealed with the user's key
// before being stored anywhere untrusted (mle.Recipe.Seal).
//
// Backup is a three-stage pipeline. The chunker runs sequentially (the
// rolling hash is inherently serial), the upload plan — segmentation,
// MinHash segment keys, and the scrambled upload order — is fixed up
// front, and then Config.Workers goroutines fan out over the plan to
// derive keys, encrypt, and fingerprint ciphertexts. Results are
// reassembled in plan order before the final PutBatch upload, so the
// store sees chunks in exactly the order the serial engine produced:
// recipes, dedup ratios, and (for a single-shard store) container layout
// are bit-for-bit independent of the worker count.
func (c *Client) Backup(r io.Reader) (*mle.Recipe, error) {
	cdc, err := chunker.NewContentDefined(r, c.cfg.Chunking)
	if err != nil {
		return nil, err
	}
	chunks, err := chunker.All(cdc)
	if err != nil {
		return nil, fmt.Errorf("dedup: chunking: %w", err)
	}
	if len(chunks) == 0 {
		return &mle.Recipe{}, nil
	}

	// Recipe entries are in original chunk order; uploads may be
	// scrambled.
	recipe := &mle.Recipe{Entries: make([]mle.RecipeEntry, len(chunks))}

	refs := make([]trace.ChunkRef, len(chunks))
	for i, ch := range chunks {
		refs[i] = trace.ChunkRef{FP: ch.Fingerprint, Size: uint32(ch.Size())}
	}
	segs, err := segment.Split(refs, c.cfg.Segments)
	if err != nil {
		return nil, err
	}

	// Build the upload plan: per-segment keys (MinHash) and the exact
	// chunk order the store will see. Scrambling consumes c.rng here, on
	// one goroutine, so the plan is a deterministic function of the
	// input, the config, and the scramble seed.
	plan := make([]uploadJob, 0, len(chunks))
	for _, s := range segs {
		var segKey mle.Key
		if c.cfg.Encryption == EncMinHash {
			fps := make([]fphash.Fingerprint, 0, s.Len())
			for _, ref := range refs[s.Start:s.End] {
				fps = append(fps, ref.FP)
			}
			segKey, err = mle.NewMinHash(c.cfg.Deriver).SegmentKey(fps)
			if err != nil {
				return nil, err
			}
		}

		order := make([]int, s.Len())
		for i := range order {
			order[i] = s.Start + i
		}
		if c.cfg.Scramble {
			order = scrambleOrder(order, c.rng)
		}
		for _, idx := range order {
			plan = append(plan, uploadJob{chunkIdx: idx, segKey: segKey})
		}
	}

	// Encrypt and upload in bounded windows of the plan, so at most one
	// window of ciphertext is resident alongside the plaintext chunks
	// (CTR is length-preserving; an unbounded batch would double peak
	// memory). Windows run in plan order and each PutBatch preserves
	// batch order within a shard, so the store sees exactly the serial
	// sequence regardless of window boundaries.
	batch := make([]PutChunk, 0, uploadWindowChunks)
	for lo := 0; lo < len(plan); lo += uploadWindowChunks {
		hi := lo + uploadWindowChunks
		if hi > len(plan) {
			hi = len(plan)
		}
		window := plan[lo:hi]
		results, err := c.runEncryptStage(chunks, window)
		if err != nil {
			return nil, err
		}
		batch = batch[:0]
		for p, res := range results {
			batch = append(batch, PutChunk{FP: res.cfp, Data: res.ct})
			recipe.Entries[window[p].chunkIdx] = mle.RecipeEntry{
				Fingerprint: res.cfp,
				Key:         res.key,
				Size:        uint32(len(res.ct)),
			}
		}
		c.store.PutBatch(batch)
	}
	return recipe, nil
}

// uploadWindowChunks bounds how many encrypted chunks Backup holds before
// flushing them to the store: ~8 MiB of ciphertext at the default 8 KiB
// average chunk size, and still hundreds of jobs per window so the worker
// fan-out stays saturated.
const uploadWindowChunks = 1024

// runEncryptStage executes the fan-out stage of the backup pipeline:
// Workers goroutines pull jobs from the plan, derive the chunk key,
// encrypt, and fingerprint the ciphertext. Results land at their plan
// position, so the output order is independent of goroutine scheduling.
func (c *Client) runEncryptStage(chunks []chunker.Chunk, plan []uploadJob) ([]uploadResult, error) {
	results := make([]uploadResult, len(plan))
	workers := c.cfg.Workers
	if workers > len(plan) {
		workers = len(plan)
	}
	if workers <= 1 {
		for p := range plan {
			if err := c.encryptOne(chunks, plan, results, p); err != nil {
				return nil, err
			}
		}
		return results, nil
	}

	var (
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
		next     int
		nextMu   sync.Mutex
	)
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}
	failed := func() bool {
		errMu.Lock()
		defer errMu.Unlock()
		return firstErr != nil
	}
	take := func() int {
		nextMu.Lock()
		defer nextMu.Unlock()
		if next >= len(plan) {
			return -1
		}
		p := next
		next++
		return p
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				p := take()
				if p < 0 || failed() {
					return
				}
				if err := c.encryptOne(chunks, plan, results, p); err != nil {
					fail(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	return results, firstErr
}

// encryptOne processes plan position p: key derivation, deterministic
// encryption, and ciphertext fingerprinting for one chunk.
func (c *Client) encryptOne(chunks []chunker.Chunk, plan []uploadJob, results []uploadResult, p int) error {
	job := plan[p]
	ch := chunks[job.chunkIdx]
	var key mle.Key
	switch c.cfg.Encryption {
	case EncConvergent:
		key = mle.ConvergentKey(ch.Data)
	case EncServerAided:
		var err error
		key, err = c.cfg.Deriver.DeriveKey(ch.Fingerprint)
		if err != nil {
			return fmt.Errorf("dedup: derive key: %w", err)
		}
	case EncMinHash:
		key = job.segKey
	}
	ct := mle.EncryptDeterministic(key, ch.Data)
	results[p] = uploadResult{ct: ct, cfp: fphash.FromBytes(ct), key: key}
	return nil
}

// scrambleOrder applies Algorithm 5's front/back shuffle to a slice of
// indices.
func scrambleOrder(in []int, rng *rand.Rand) []int {
	n := len(in)
	buf := make([]int, 2*n)
	front, back := n, n
	for _, v := range in {
		if rng.Intn(2) == 1 {
			front--
			buf[front] = v
		} else {
			buf[back] = v
			back++
		}
	}
	return buf[front:back]
}

// Restore reconstructs the original stream described by recipe, writing it
// to w. Chunks are fetched by ciphertext fingerprint and decrypted with
// the per-chunk keys; recipe order restores the pre-scrambling layout.
func (c *Client) Restore(recipe *mle.Recipe, w io.Writer) error {
	for i, e := range recipe.Entries {
		ct, ok := c.store.Get(e.Fingerprint)
		if !ok {
			return fmt.Errorf("dedup: restore: chunk %d (%v) missing from store", i, e.Fingerprint)
		}
		plain := mle.DecryptDeterministic(e.Key, ct)
		if len(plain) != int(e.Size) {
			return fmt.Errorf("dedup: restore: chunk %d size %d, recipe says %d", i, len(plain), e.Size)
		}
		if _, err := w.Write(plain); err != nil {
			return fmt.Errorf("dedup: restore: write: %w", err)
		}
	}
	return nil
}
