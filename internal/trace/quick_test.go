package trace

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"freqdedup/internal/fphash"
)

// randomDataset builds an arbitrary small dataset from a seed, for
// property-based round-trip checks.
func randomDataset(seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := &Dataset{Name: "prop"}
	nBackups := 1 + rng.Intn(4)
	for b := 0; b < nBackups; b++ {
		bk := &Backup{Label: string(rune('a' + b))}
		n := 1 + rng.Intn(200)
		for i := 0; i < n; i++ {
			bk.Chunks = append(bk.Chunks, ChunkRef{
				FP:   fphash.FromUint64(rng.Uint64() | 1),
				Size: uint32(1 + rng.Intn(1<<16)),
			})
		}
		d.Backups = append(d.Backups, bk)
	}
	return d
}

// TestCodecRoundTripProperty: Write then Read is the identity on arbitrary
// datasets.
func TestCodecRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		d := randomDataset(seed)
		var buf bytes.Buffer
		if err := Write(&buf, d); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		if got.Name != d.Name || len(got.Backups) != len(d.Backups) {
			return false
		}
		for i := range d.Backups {
			if got.Backups[i].Label != d.Backups[i].Label ||
				len(got.Backups[i].Chunks) != len(d.Backups[i].Chunks) {
				return false
			}
			for j := range d.Backups[i].Chunks {
				if got.Backups[i].Chunks[j] != d.Backups[i].Chunks[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestStatsInvariantsProperty: physical <= logical, unique <= logical
// chunks, and saving in [0, 1) for any dataset.
func TestStatsInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		st := randomDataset(seed).Stats()
		if st.PhysicalBytes > st.LogicalBytes {
			return false
		}
		if st.UniqueChunks > st.LogicalChunks {
			return false
		}
		s := st.Saving()
		return s >= 0 && s < 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestFrequencyCDFMassProperty: the CDF's total mass equals the logical
// chunk count.
func TestFrequencyCDFMassProperty(t *testing.T) {
	f := func(seed int64) bool {
		d := randomDataset(seed)
		var mass int
		for _, n := range d.FrequencyCDF() {
			mass += n
		}
		return mass == d.Stats().LogicalChunks
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
