// Package dedup implements a byte-level encrypted deduplication engine: the
// full client/server pipeline of Figure 2. A Client chunks an input stream,
// encrypts the chunks under a configurable MLE scheme (optionally with the
// paper's segment scrambling and MinHash encryption defenses), uploads the
// ciphertext chunks to a Store that deduplicates them into containers, and
// keeps a sealed recipe from which the original file is restored — in the
// original order, even when scrambling reordered the stored stream.
package dedup

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"

	"freqdedup/internal/chunker"
	"freqdedup/internal/container"
	"freqdedup/internal/fphash"
	"freqdedup/internal/mle"
	"freqdedup/internal/segment"
	"freqdedup/internal/trace"
)

// Store is a deduplicated ciphertext-chunk store: one physical copy per
// unique ciphertext chunk, packed into containers. Backups can be
// registered for retention management and reclaimed with GC (see gc.go).
// A Store is safe for concurrent use by multiple clients (Figure 2's
// multi-client architecture).
type Store struct {
	mu             sync.Mutex
	index          map[fphash.Fingerprint]container.Location
	containers     *container.Store
	containerBytes int

	// Retention state: per-backup chunk references and per-chunk counts.
	backups map[string][]fphash.Fingerprint
	refs    map[fphash.Fingerprint]int

	logicalBytes  uint64
	physicalBytes uint64
	logicalChunks int
}

// NewStore returns an empty store with the given container capacity
// (container.DefaultBytes if zero).
func NewStore(containerBytes int) *Store {
	if containerBytes == 0 {
		containerBytes = container.DefaultBytes
	}
	return &Store{
		index:          make(map[fphash.Fingerprint]container.Location),
		containers:     container.New(containerBytes),
		containerBytes: containerBytes,
	}
}

// Put stores a ciphertext chunk, deduplicating against previously stored
// chunks. It reports whether the chunk was a duplicate.
func (s *Store) Put(fp fphash.Fingerprint, data []byte) (duplicate bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.logicalChunks++
	s.logicalBytes += uint64(len(data))
	if _, ok := s.index[fp]; ok {
		return true
	}
	buf := make([]byte, len(data))
	copy(buf, data)
	loc := s.containers.Append(container.Entry{FP: fp, Size: uint32(len(data)), Data: buf})
	s.index[fp] = loc
	s.physicalBytes += uint64(len(data))
	return false
}

// Get retrieves a stored ciphertext chunk by fingerprint.
func (s *Store) Get(fp fphash.Fingerprint) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	loc, ok := s.index[fp]
	if !ok {
		return nil, false
	}
	e, ok := s.containers.Get(loc)
	if !ok {
		return nil, false
	}
	return e.Data, true
}

// Stats reports deduplication effectiveness of everything stored so far.
func (s *Store) Stats() trace.DedupStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return trace.DedupStats{
		LogicalBytes:  s.logicalBytes,
		PhysicalBytes: s.physicalBytes,
		LogicalChunks: s.logicalChunks,
		UniqueChunks:  len(s.index),
	}
}

// UniqueChunks returns the number of distinct ciphertext chunks stored.
func (s *Store) UniqueChunks() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Encryption selects the client-side encryption pipeline.
type Encryption int

const (
	// EncConvergent encrypts each chunk under its content hash.
	EncConvergent Encryption = iota + 1
	// EncServerAided derives per-chunk keys from a key manager
	// (Config.Deriver).
	EncServerAided
	// EncMinHash derives one key per segment from the segment's minimum
	// fingerprint via Config.Deriver (Algorithm 4).
	EncMinHash
)

// Config configures a Client.
type Config struct {
	// Chunking parameters (chunker.DefaultParams if zero).
	Chunking chunker.Params
	// Encryption selects the MLE scheme (EncConvergent if zero).
	Encryption Encryption
	// Deriver supplies keys for EncServerAided and EncMinHash.
	Deriver mle.KeyDeriver
	// Segments configures segmentation for EncMinHash and Scramble
	// (segment.DefaultParams if zero).
	Segments segment.Params
	// Scramble enables per-segment upload-order scrambling (Algorithm 5).
	// Restores are unaffected: the recipe preserves original order.
	Scramble bool
	// ScrambleSeed seeds scrambling for reproducibility; 0 means a
	// time-independent fixed seed is NOT used — callers wanting
	// reproducibility must set it, otherwise a math/rand default source is
	// used per client.
	ScrambleSeed int64
}

// Client is the client side of Figure 2: chunk, encrypt, upload.
type Client struct {
	cfg   Config
	store *Store
	rng   *rand.Rand
}

// NewClient returns a client uploading to store.
func NewClient(store *Store, cfg Config) (*Client, error) {
	if store == nil {
		return nil, errors.New("dedup: nil store")
	}
	if cfg.Chunking == (chunker.Params{}) {
		cfg.Chunking = chunker.DefaultParams()
	}
	if err := cfg.Chunking.Validate(); err != nil {
		return nil, err
	}
	if cfg.Encryption == 0 {
		cfg.Encryption = EncConvergent
	}
	if cfg.Segments == (segment.Params{}) {
		cfg.Segments = segment.DefaultParams()
	}
	if err := cfg.Segments.Validate(); err != nil {
		return nil, err
	}
	switch cfg.Encryption {
	case EncConvergent:
	case EncServerAided, EncMinHash:
		if cfg.Deriver == nil {
			return nil, mle.ErrNoKeyDeriver
		}
	default:
		return nil, fmt.Errorf("dedup: unknown encryption %d", cfg.Encryption)
	}
	seed := cfg.ScrambleSeed
	if seed == 0 {
		seed = 0x5eed
	}
	return &Client{cfg: cfg, store: store, rng: rand.New(rand.NewSource(seed))}, nil
}

// Backup chunks, encrypts, and uploads the stream, returning the recipe
// needed to restore it. The recipe must be sealed with the user's key
// before being stored anywhere untrusted (mle.Recipe.Seal).
func (c *Client) Backup(r io.Reader) (*mle.Recipe, error) {
	cdc, err := chunker.NewContentDefined(r, c.cfg.Chunking)
	if err != nil {
		return nil, err
	}
	chunks, err := chunker.All(cdc)
	if err != nil {
		return nil, fmt.Errorf("dedup: chunking: %w", err)
	}
	if len(chunks) == 0 {
		return &mle.Recipe{}, nil
	}

	// Recipe entries are in original chunk order; uploads may be
	// scrambled.
	recipe := &mle.Recipe{Entries: make([]mle.RecipeEntry, len(chunks))}

	refs := make([]trace.ChunkRef, len(chunks))
	for i, ch := range chunks {
		refs[i] = trace.ChunkRef{FP: ch.Fingerprint, Size: uint32(ch.Size())}
	}
	segs, err := segment.Split(refs, c.cfg.Segments)
	if err != nil {
		return nil, err
	}

	for _, s := range segs {
		// Per-segment key for MinHash encryption.
		var segKey mle.Key
		if c.cfg.Encryption == EncMinHash {
			fps := make([]fphash.Fingerprint, 0, s.Len())
			for _, ref := range refs[s.Start:s.End] {
				fps = append(fps, ref.FP)
			}
			segKey, err = mle.NewMinHash(c.cfg.Deriver).SegmentKey(fps)
			if err != nil {
				return nil, err
			}
		}

		order := make([]int, s.Len())
		for i := range order {
			order[i] = s.Start + i
		}
		if c.cfg.Scramble {
			order = scrambleOrder(order, c.rng)
		}

		for _, idx := range order {
			ch := chunks[idx]
			var key mle.Key
			switch c.cfg.Encryption {
			case EncConvergent:
				key = mle.ConvergentKey(ch.Data)
			case EncServerAided:
				key, err = c.cfg.Deriver.DeriveKey(ch.Fingerprint)
				if err != nil {
					return nil, fmt.Errorf("dedup: derive key: %w", err)
				}
			case EncMinHash:
				key = segKey
			}
			ct := mle.EncryptDeterministic(key, ch.Data)
			cfp := fphash.FromBytes(ct)
			c.store.Put(cfp, ct)
			recipe.Entries[idx] = mle.RecipeEntry{
				Fingerprint: cfp,
				Key:         key,
				Size:        uint32(ch.Size()),
			}
		}
	}
	return recipe, nil
}

// scrambleOrder applies Algorithm 5's front/back shuffle to a slice of
// indices.
func scrambleOrder(in []int, rng *rand.Rand) []int {
	n := len(in)
	buf := make([]int, 2*n)
	front, back := n, n
	for _, v := range in {
		if rng.Intn(2) == 1 {
			front--
			buf[front] = v
		} else {
			buf[back] = v
			back++
		}
	}
	return buf[front:back]
}

// Restore reconstructs the original stream described by recipe, writing it
// to w. Chunks are fetched by ciphertext fingerprint and decrypted with
// the per-chunk keys; recipe order restores the pre-scrambling layout.
func (c *Client) Restore(recipe *mle.Recipe, w io.Writer) error {
	for i, e := range recipe.Entries {
		ct, ok := c.store.Get(e.Fingerprint)
		if !ok {
			return fmt.Errorf("dedup: restore: chunk %d (%v) missing from store", i, e.Fingerprint)
		}
		plain := mle.DecryptDeterministic(e.Key, ct)
		if len(plain) != int(e.Size) {
			return fmt.Errorf("dedup: restore: chunk %d size %d, recipe says %d", i, len(plain), e.Size)
		}
		if _, err := w.Write(plain); err != nil {
			return fmt.Errorf("dedup: restore: write: %w", err)
		}
	}
	return nil
}
