package mle

import "bytes"

// BruteForce mounts the offline brute-force attack against convergent
// encryption (Section 2.2): given the set of candidate plaintexts a chunk
// is drawn from, derive each candidate's convergent key, encrypt it, and
// compare with the target ciphertext. It returns the matching plaintext.
//
// The attack succeeds whenever the candidate set is enumerable — MLE is
// only secure for unpredictable chunks. Server-aided MLE defeats it: the
// chunk key depends on the key manager's secret, so the adversary cannot
// re-derive keys offline (see BruteForceServerAided's test).
func BruteForce(candidates [][]byte, ciphertext []byte) ([]byte, bool) {
	for _, cand := range candidates {
		key := ConvergentKey(cand)
		if bytes.Equal(EncryptDeterministic(key, cand), ciphertext) {
			return cand, true
		}
	}
	return nil, false
}
