// Command attack runs the paper's inference attacks.
//
// Two modes of use:
//
//   - Reproduce the attack-evaluation figures (Section 5) on the built-in
//     datasets:
//
//     attack -fig 5        # Figure 5 (varying auxiliary backups)
//     attack -fig all      # every attack figure
//
//   - Run a single attack on a trace file written by tracegen:
//
//     attack -trace fsl.trace -attack advanced -aux 2 -target 4
//     attack -trace fsl.trace -attack locality -leakage 0.002
package main

import (
	"flag"
	"fmt"
	"os"

	"freqdedup/internal/attack"
	"freqdedup/internal/defense"
	"freqdedup/internal/eval"
	"freqdedup/internal/trace"
)

func main() {
	figFlag := flag.String("fig", "", "reproduce figures: 1, 4, 5, 6, 7, 8, 9, scaling, or all")
	tracePath := flag.String("trace", "", "trace file to attack (single-run mode)")
	attackName := flag.String("attack", "locality", "attack: basic, locality, or advanced")
	auxIdx := flag.Int("aux", 0, "auxiliary backup index")
	targetIdx := flag.Int("target", -1, "target backup index (-1 = latest)")
	leakage := flag.Float64("leakage", 0, "leakage rate for known-plaintext mode (e.g. 0.002)")
	u := flag.Int("u", 1, "seed pairs from frequency analysis (parameter u)")
	v := flag.Int("v", 15, "pairs per neighbor analysis (parameter v)")
	w := flag.Int("w", 200000, "inferred-set bound (parameter w, 0 = unbounded)")
	flag.Parse()

	switch {
	case *figFlag != "":
		runFigures(*figFlag)
	case *tracePath != "":
		runSingle(*tracePath, *attackName, *auxIdx, *targetIdx, *leakage, *u, *v, *w)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func runFigures(which string) {
	ds := eval.Generate()
	emit := func(figs ...eval.Figure) {
		for i := range figs {
			figs[i].Render(os.Stdout)
		}
	}
	all := which == "all"
	if all || which == "1" {
		emit(eval.Fig1FrequencyDistribution(ds)...)
	}
	if all || which == "4" {
		emit(eval.Fig4ParamSweep(ds)...)
	}
	if all || which == "5" {
		emit(eval.Fig5VaryAux(ds)...)
	}
	if all || which == "6" {
		emit(eval.Fig6VaryTarget(ds)...)
	}
	if all || which == "7" {
		emit(eval.Fig7SlidingWindow(ds)...)
	}
	if all || which == "8" {
		emit(eval.Fig8KnownPlaintext(ds))
	}
	if all || which == "9" {
		emit(eval.Fig9KPVaryAux(ds)...)
	}
	if all || which == "scaling" {
		emit(eval.AttackScaling(ds.FSL))
	}
}

func runSingle(path, attackName string, auxIdx, targetIdx int, leakage float64, u, v, w int) {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	d, err := trace.Read(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	if targetIdx < 0 {
		targetIdx = len(d.Backups) - 1
	}
	if auxIdx < 0 || auxIdx >= len(d.Backups) || targetIdx >= len(d.Backups) {
		fatal(fmt.Errorf("backup index out of range (dataset has %d backups)", len(d.Backups)))
	}
	aux, target := d.Backups[auxIdx], d.Backups[targetIdx]

	enc := defense.EncryptMLE(target)
	cfg := attack.Config{U: u, V: v, W: w, Mode: attack.CiphertextOnly}
	if leakage > 0 {
		cfg.Mode = attack.KnownPlaintext
		cfg.Leaked = attack.SampleLeaked(enc.Backup, enc.Truth, leakage, 42)
	}

	var atk attack.Attack
	switch attackName {
	case "basic":
		atk = attack.NewBasic(cfg)
	case "locality":
		atk = attack.NewLocality(cfg)
	case "advanced":
		atk = attack.NewAdvanced(cfg)
	default:
		fatal(fmt.Errorf("unknown attack %q", attackName))
	}
	res, err := atk.Run(attack.BackupSource(enc.Backup), attack.BackupSource(aux), attack.Params{})
	if err != nil {
		fatal(err)
	}
	pairs, stats := res.Pairs, res.Stats

	rate := res.InferenceRate(enc.Truth)
	fmt.Printf("dataset:   %s\n", d.Name)
	fmt.Printf("aux:       %s (index %d)\n", aux.Label, auxIdx)
	fmt.Printf("target:    %s (index %d, %d unique ciphertext chunks)\n",
		target.Label, targetIdx, enc.Backup.UniqueCount())
	fmt.Printf("attack:    %s (%s, u=%d v=%d w=%d leakage=%.3f%%)\n",
		attackName, cfg.Mode, u, v, w, leakage*100)
	fmt.Printf("inferred:  %d pairs\n", len(pairs))
	if attackName != "basic" {
		fmt.Printf("run stats: %d seeds, %d iterations, peak queue %d, %d dropped by w\n",
			stats.Seeds, stats.Iterations, stats.PeakQueue, stats.DroppedByW)
	}
	fmt.Printf("inference rate: %.4f%%\n", rate*100)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "attack:", err)
	os.Exit(1)
}
