package gcommit

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestLoneCommitSyncs: a single commit runs exactly one sync and is
// acknowledged.
func TestLoneCommitSyncs(t *testing.T) {
	var syncs atomic.Int64
	c := New(func() error { syncs.Add(1); return nil }, true)
	if err := c.Commit(1); err != nil {
		t.Fatal(err)
	}
	if syncs.Load() != 1 || c.Durable() != 1 {
		t.Fatalf("syncs=%d durable=%d, want 1/1", syncs.Load(), c.Durable())
	}
}

// TestAbsorption: commits that arrive while a sync is in flight share
// the NEXT sync — N concurrent commits need at most 2 sync rounds, and
// none acks before a sync that covers it.
func TestAbsorption(t *testing.T) {
	const n = 32
	var (
		mu      sync.Mutex
		inSync  bool
		syncs   int
		release = make(chan struct{})
		first   = make(chan struct{})
	)
	c := New(func() error {
		mu.Lock()
		inSync = true
		syncs++
		k := syncs
		mu.Unlock()
		if k == 1 {
			close(first)
			<-release // hold the first sync open while the others arrive
		}
		mu.Lock()
		inSync = false
		mu.Unlock()
		return nil
	}, true)

	errs := make(chan error, n)
	go func() {
		errs <- c.Commit(1)
	}()
	<-first
	var wg sync.WaitGroup
	for i := 2; i <= n; i++ {
		wg.Add(1)
		go func(seq int64) {
			defer wg.Done()
			errs <- c.Commit(seq)
		}(int64(i))
	}
	// Give the joiners a moment to announce their sequences, then let the
	// held sync finish.
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	mu.Lock()
	total := syncs
	mu.Unlock()
	if total > 2 {
		t.Fatalf("%d commits took %d syncs, want at most 2 (leader + one absorbed round)", n, total)
	}
	if c.Durable() < n {
		t.Fatalf("durable=%d after %d acked commits", c.Durable(), n)
	}
	_ = inSync
}

// TestNoAckBeforeCoveringSync: a commit whose sequence was appended
// after the in-flight sync captured its target must NOT be acknowledged
// by that sync — it waits for the next round.
func TestNoAckBeforeCoveringSync(t *testing.T) {
	var (
		started = make(chan struct{})
		release = make(chan struct{})
		rounds  atomic.Int64
	)
	c := New(func() error {
		r := rounds.Add(1)
		if r == 1 {
			close(started)
			<-release
		}
		return nil
	}, true)
	go c.Commit(1) //nolint:errcheck // released below; failure surfaces via rounds
	<-started
	// Sync 1 is in flight with target 1; this commit must not ride it.
	done := make(chan error, 1)
	go func() { done <- c.Commit(2) }()
	select {
	case err := <-done:
		t.Fatalf("commit 2 acked while only sync round 1 (target 1) ran: %v", err)
	case <-time.After(30 * time.Millisecond):
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if got := rounds.Load(); got < 2 {
		t.Fatalf("commit 2 acked after %d rounds, needs a second covering round", got)
	}
}

// TestStickyPoison: after one sync failure every waiting and future
// commit fails; the barrier is never retried.
func TestStickyPoison(t *testing.T) {
	boom := errors.New("fsync: boom")
	var syncs atomic.Int64
	c := New(func() error { syncs.Add(1); return boom }, true)
	if err := c.Commit(1); !errors.Is(err, boom) {
		t.Fatalf("commit 1: %v, want %v", err, boom)
	}
	if err := c.Commit(2); !errors.Is(err, boom) {
		t.Fatalf("commit 2 after poison: %v, want %v", err, boom)
	}
	if err := c.Err(); !errors.Is(err, boom) {
		t.Fatalf("Err() = %v, want %v", err, boom)
	}
	if syncs.Load() != 1 {
		t.Fatalf("%d syncs ran after poison, want 1", syncs.Load())
	}
}

// TestNonStickyRetries: a failed round fails its waiters but later
// commits run fresh rounds.
func TestNonStickyRetries(t *testing.T) {
	boom := errors.New("seal: boom")
	var syncs atomic.Int64
	c := New(func() error {
		if syncs.Add(1) == 1 {
			return boom
		}
		return nil
	}, false)
	if err := c.Commit(1); !errors.Is(err, boom) {
		t.Fatalf("commit 1: %v, want %v", err, boom)
	}
	if err := c.Commit(2); err != nil {
		t.Fatalf("commit 2 after transient failure: %v", err)
	}
	if c.Durable() != 2 {
		t.Fatalf("durable=%d, want 2", c.Durable())
	}
}

// TestMarkDurable: out-of-band durability (compaction) releases waiters
// without a sync round.
func TestMarkDurable(t *testing.T) {
	block := make(chan struct{})
	var syncs atomic.Int64
	c := New(func() error { syncs.Add(1); <-block; return nil }, true)
	go c.Commit(1) //nolint:errcheck // held open to park commit 2 in a wait
	for c.Syncs() == 0 && syncs.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	done := make(chan error, 1)
	go func() { done <- c.Commit(2) }()
	time.Sleep(10 * time.Millisecond)
	c.MarkDurable(5)
	if err := <-done; err != nil {
		t.Fatalf("commit 2 after MarkDurable(5): %v", err)
	}
	close(block)
}

// TestLoneCommitLatencyWindow: the straggler window bounds a lone
// commit's extra latency — it is delayed by roughly the window, not
// more.
func TestLoneCommitLatencyWindow(t *testing.T) {
	const window = 50 * time.Millisecond
	c := New(func() error { return nil }, true)
	c.SetWindow(window)
	start := time.Now()
	if err := c.Commit(1); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed < window {
		t.Fatalf("lone commit returned in %v, before the %v straggler window", elapsed, window)
	}
	if elapsed > 10*window {
		t.Fatalf("lone commit took %v, far beyond the %v straggler window", elapsed, window)
	}
}

// TestWindowBatches: with a straggler window, commits arriving within
// the window share one sync round.
func TestWindowBatches(t *testing.T) {
	const n = 8
	var syncs atomic.Int64
	slept := make(chan struct{})
	c := New(func() error { syncs.Add(1); return nil }, true)
	c.sleep = func(time.Duration) { close(slept); time.Sleep(30 * time.Millisecond) }
	c.SetWindow(time.Millisecond) // any positive value routes through c.sleep
	errs := make(chan error, n)
	go func() { errs <- c.Commit(1) }()
	<-slept
	for i := 2; i <= n; i++ {
		go func(seq int64) { errs <- c.Commit(seq) }(int64(i))
	}
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if got := syncs.Load(); got > 2 {
		t.Fatalf("%d windowed commits took %d syncs, want at most 2", n, got)
	}
}
