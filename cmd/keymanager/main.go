// Command keymanager runs a standalone DupLESS-style key manager for
// server-aided MLE (Section 2.2): clients authenticate with a shared token
// and request chunk keys derived as HMAC-SHA-256(secret, fingerprint),
// subject to token-bucket rate limiting that slows online brute-force
// attacks.
//
//	keymanager -addr 127.0.0.1:7465 -secret s3cret -token t0ken -rate 1000 -burst 100
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"freqdedup/internal/keymgr"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7465", "listen address")
	secret := flag.String("secret", "", "system-wide key-derivation secret (required)")
	token := flag.String("token", "", "client authentication token (required)")
	rate := flag.Float64("rate", 0, "max key derivations per second (0 = unlimited)")
	burst := flag.Float64("burst", 100, "rate-limiter burst size")
	flag.Parse()

	if *secret == "" || *token == "" {
		fmt.Fprintln(os.Stderr, "keymanager: -secret and -token are required")
		os.Exit(2)
	}

	var tok [keymgr.TokenSize]byte
	copy(tok[:], *token)

	cfg := keymgr.ServerConfig{Secret: []byte(*secret), Token: tok}
	if *rate > 0 {
		cfg.Limiter = keymgr.NewTokenBucket(*rate, *burst)
	}
	srv, err := keymgr.NewServer(cfg)
	if err != nil {
		fatal(err)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		fmt.Println("keymanager: shutting down")
		derived, rejected := srv.Stats()
		fmt.Printf("keymanager: %d keys derived, %d requests rate-limited\n", derived, rejected)
		srv.Close()
	}()

	fmt.Printf("keymanager: listening on %s (rate limit: %v/s)\n", *addr, *rate)
	if err := srv.ListenAndServe(*addr); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "keymanager:", err)
	os.Exit(1)
}
