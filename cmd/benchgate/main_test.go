package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestCanonicalName(t *testing.T) {
	cases := map[string]string{
		"BenchmarkChunkerCDC-8":               "BenchmarkChunkerCDC",
		"BenchmarkChunkerCDC":                 "BenchmarkChunkerCDC",
		"BenchmarkStoreShards/shards=4-16":    "BenchmarkStoreShards/shards=4",
		"BenchmarkChunkerGearMulti/workers=2": "BenchmarkChunkerGearMulti/workers=2",
	}
	for in, want := range cases {
		if got := canonicalName(in); got != want {
			t.Errorf("canonicalName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestStableTier(t *testing.T) {
	for _, name := range []string{
		"BenchmarkChunkerCDC", "BenchmarkChunkerGear",
		"BenchmarkBackupSerial", "BenchmarkBackupParallel",
		"BenchmarkRestoreSerial", "BenchmarkRestoreParallel/cache=64",
		"BenchmarkStoreShards/shards=4",
	} {
		if !inStableTier(name) {
			t.Errorf("%s should be in the stable tier", name)
		}
	}
	for _, name := range []string{
		"BenchmarkBasicAttackFSL", "BenchmarkAttackStreaming/shards=1",
		"BenchmarkWorkloadGenerate", "BenchmarkBackupNotATier",
	} {
		if inStableTier(name) {
			t.Errorf("%s must not gate", name)
		}
	}
}

func TestParseBenchOutput(t *testing.T) {
	out := `goos: linux
goarch: amd64
BenchmarkChunkerCDC-8      5   44221123 ns/op   379.39 MB/s   268310 B/op   7 allocs/op
BenchmarkNoThroughput      5   44221123 ns/op
PASS
`
	got, err := parseBenchOutput(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got["BenchmarkChunkerCDC"] != 379.39 {
		t.Fatalf("parsed %v", got)
	}
}

func writeBaseline(t *testing.T, dir, name, body string) string {
	t.Helper()
	p := filepath.Join(dir, name)
	if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestCompareGatesOnlyStableTier(t *testing.T) {
	dir := t.TempDir()
	p := writeBaseline(t, dir, "BENCH_20260101.json", `{
  "date": "20260101", "go": "go", "gomaxprocs": 1,
  "benchmarks": [
    {"name": "BenchmarkChunkerCDC", "iterations": 5, "ns/op": 1, "MB/s": 400.0},
    {"name": "BenchmarkBasicAttackFSL", "iterations": 5, "ns/op": 1, "MB/s": 100.0}
  ]
}`)
	b, err := loadBaseline(p)
	if err != nil {
		t.Fatal(err)
	}
	fresh := map[string]float64{
		"BenchmarkChunkerCDC":     300.0, // -25%: regression in stable tier
		"BenchmarkBasicAttackFSL": 10.0,  // -90%: but not a gating benchmark
		"BenchmarkChunkerGear":    900.0, // new: no baseline, never gates
	}
	byName := map[string]delta{}
	for _, d := range compare([]*baseline{b}, fresh, 0.20) {
		byName[d.Name] = d
	}
	if d := byName["BenchmarkChunkerCDC"]; !d.Gating || !d.Regessed {
		t.Errorf("ChunkerCDC at -25%% must gate and fail: %+v", d)
	}
	if d := byName["BenchmarkBasicAttackFSL"]; d.Gating || d.Regessed {
		t.Errorf("attack benchmark must never gate: %+v", d)
	}
	if d := byName["BenchmarkChunkerGear"]; d.Gating || d.Regessed || d.Base != 0 {
		t.Errorf("new benchmark must never gate: %+v", d)
	}
}

func TestCompareGatesAgainstNewestBaseline(t *testing.T) {
	dir := t.TempDir()
	newest, err := loadBaseline(writeBaseline(t, dir, "BENCH_20260201.json", `{
  "benchmarks": [{"name": "BenchmarkChunkerCDC", "MB/s": 300.0}]
}`))
	if err != nil {
		t.Fatal(err)
	}
	older, err := loadBaseline(writeBaseline(t, dir, "BENCH_20260101.json", `{
  "benchmarks": [{"name": "BenchmarkChunkerCDC", "MB/s": 400.0}]
}`))
	if err != nil {
		t.Fatal(err)
	}

	// 280 MB/s is a -30% loss against the OLDER, faster baseline but only
	// -7% against the newest accepted state: the newest baseline gates.
	got := compare([]*baseline{newest, older}, map[string]float64{"BenchmarkChunkerCDC": 280.0}, 0.20)
	if len(got) != 1 || got[0].Regessed || !got[0].Gating || got[0].Base != 300.0 {
		t.Fatalf("newest-baseline compare: %+v", got)
	}

	// The newest baseline demoted to advisory (foreign CPU): gating falls
	// back to the older comparable one, and 280 against 400 fails.
	newest.advisory = true
	got = compare([]*baseline{newest, older}, map[string]float64{"BenchmarkChunkerCDC": 280.0}, 0.20)
	if len(got) != 1 || !got[0].Regessed || got[0].Base != 400.0 {
		t.Fatalf("advisory-fallback compare: %+v", got)
	}

	// Both advisory: nothing gates at all.
	older.advisory = true
	got = compare([]*baseline{newest, older}, map[string]float64{"BenchmarkChunkerCDC": 280.0}, 0.20)
	if len(got) != 1 || got[0].Gating || got[0].Regessed {
		t.Fatalf("all-advisory compare: %+v", got)
	}
}
