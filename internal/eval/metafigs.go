package eval

import (
	"fmt"

	"freqdedup/internal/ddfs"
	"freqdedup/internal/defense"
	"freqdedup/internal/trace"
)

// MetadataResult is the per-backup metadata access volume of one scheme
// under the DDFS-like prototype.
type MetadataResult struct {
	Scheme   defense.Scheme
	PerBack  []ddfs.AccessStats
	CacheHit float64
}

// runMetadata encrypts every FSL backup under the scheme and replays the
// ciphertext streams through the DDFS-like prototype with the given
// fingerprint-cache capacity.
func runMetadata(d *trace.Dataset, scheme defense.Scheme, cacheBytes uint64) (MetadataResult, error) {
	var expected uint64
	for _, b := range d.Backups {
		expected += uint64(len(b.Chunks))
	}
	sys := ddfs.New(ddfs.Config{
		ContainerBytes:       4 << 20,
		CacheBytes:           cacheBytes,
		ExpectedFingerprints: expected,
		BloomFPP:             0.01,
	})
	res := MetadataResult{Scheme: scheme}
	for i, b := range d.Backups {
		enc, err := defense.Encrypt(b, scheme, int64(i+1))
		if err != nil {
			return MetadataResult{}, err
		}
		res.PerBack = append(res.PerBack, sys.StoreBackup(enc.Backup))
	}
	res.CacheHit = sys.CacheHitRate()
	return res, nil
}

// cacheSized returns the fingerprint-cache capacity covering the given
// fraction of the dataset's total (MLE-unique) fingerprint metadata. The
// paper's two regimes — a 512 MB cache that cannot hold the FSL dataset's
// ~2 GB of fingerprint metadata, and a 4 GB cache that holds all of it —
// map to fractions ~0.25 and >1 at our scale.
func cacheSized(d *trace.Dataset, frac float64) uint64 {
	unique := make(map[[8]byte]struct{})
	for _, b := range d.Backups {
		for _, c := range b.Chunks {
			unique[c.FP] = struct{}{}
		}
	}
	return uint64(float64(len(unique)) * ddfs.EntryBytes * frac)
}

// figsMetadata builds the Figure 13/14 triple (overall + per-scheme
// breakdown) for one cache regime.
func figsMetadata(ds Datasets, figID string, cacheFrac float64) ([]Figure, error) {
	d := ds.FSL
	cache := cacheSized(d, cacheFrac)
	mle, err := runMetadata(d, defense.SchemeMLE, cache)
	if err != nil {
		return nil, err
	}
	comb, err := runMetadata(d, defense.SchemeCombined, cache)
	if err != nil {
		return nil, err
	}

	labels := make([]string, len(d.Backups))
	for i, b := range d.Backups {
		labels[i] = b.Label
	}
	const mb = 1 << 20
	toMB := func(v uint64) float64 { return float64(v) / mb }

	overall := Figure{
		ID:     figID + "(a)",
		Title:  fmt.Sprintf("overall metadata access per backup, cache = %.0f%% of fingerprint metadata (MB)", cacheFrac*100),
		XLabel: "backup",
		X:      labels,
	}
	mleSer := Series{Name: "MLE"}
	combSer := Series{Name: "Combined"}
	for i := range d.Backups {
		mleSer.Y = append(mleSer.Y, toMB(mle.PerBack[i].Total()))
		combSer.Y = append(combSer.Y, toMB(comb.PerBack[i].Total()))
	}
	overall.Series = []Series{mleSer, combSer}
	overall.Notes = append(overall.Notes,
		fmt.Sprintf("cache hit rate: MLE %.1f%%, Combined %.1f%%", mle.CacheHit*100, comb.CacheHit*100))

	breakdown := func(id, name string, r MetadataResult) Figure {
		fig := Figure{
			ID:     id,
			Title:  "metadata access breakdown for " + name + " (MB)",
			XLabel: "backup",
			X:      labels,
		}
		var upd, idx, load Series
		upd.Name, idx.Name, load.Name = "Update", "Index", "Loading"
		for i := range d.Backups {
			upd.Y = append(upd.Y, toMB(r.PerBack[i].UpdateBytes))
			idx.Y = append(idx.Y, toMB(r.PerBack[i].IndexBytes))
			load.Y = append(load.Y, toMB(r.PerBack[i].LoadingBytes))
		}
		fig.Series = []Series{upd, idx, load}
		return fig
	}

	return []Figure{
		overall,
		breakdown(figID+"(b)", "MLE", mle),
		breakdown(figID+"(c)", "Combined", comb),
	}, nil
}

// MetadataWithCacheFrac runs the Section 7.4 experiment with a custom
// fingerprint-cache size, expressed as a fraction of the dataset's total
// fingerprint metadata.
func MetadataWithCacheFrac(ds Datasets, frac float64) ([]Figure, error) {
	return figsMetadata(ds, fmt.Sprintf("Sec 7.4 (cache %.0f%%)", frac*100), frac)
}

// Fig13Metadata512 reproduces Figure 13: metadata access overhead when the
// fingerprint cache is insufficient (the paper's 512 MB regime, scaled to
// 25% of the dataset's fingerprint metadata).
func Fig13Metadata512(ds Datasets) ([]Figure, error) {
	return figsMetadata(ds, "Fig 13", 0.25)
}

// Fig14Metadata4G reproduces Figure 14: metadata access overhead when the
// fingerprint cache holds all fingerprints (the paper's 4 GB regime).
func Fig14Metadata4G(ds Datasets) ([]Figure, error) {
	return figsMetadata(ds, "Fig 14", 1.5)
}
