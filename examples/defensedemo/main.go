// Defensedemo: show how MinHash encryption and scrambling defeat the
// advanced locality-based attack while keeping deduplication effective —
// a compact version of Figures 10 and 11 on the FSL-like dataset.
package main

import (
	"fmt"
	"log"

	"freqdedup"
)

func main() {
	params := freqdedup.DefaultFSLParams()
	params.PerUserBytes = 8 << 20 // keep the demo quick
	dataset := freqdedup.GenerateFSL(params)

	n := len(dataset.Backups)
	aux := dataset.Backups[n-2]
	target := dataset.Backups[n-1]

	const leakage = 0.002 // the paper's strongest known-plaintext setting

	fmt.Printf("FSL-like dataset, aux = %s, target = %s, leakage = %.1f%%\n\n",
		aux.Label, target.Label, leakage*100)
	fmt.Printf("%-22s | %-14s\n", "scheme", "inference rate")
	fmt.Println("-----------------------+---------------")

	for _, scheme := range []freqdedup.DefenseScheme{
		freqdedup.SchemeMLE, freqdedup.SchemeMinHash, freqdedup.SchemeCombined,
	} {
		enc, err := freqdedup.EncryptWithScheme(target, scheme, 7)
		if err != nil {
			log.Fatal(err)
		}
		leaked := freqdedup.SampleLeaked(enc.Backup, enc.Truth, leakage, 42)
		cfg := freqdedup.LocalityConfig{
			U: 1, V: 15, W: 500000,
			Mode:      freqdedup.KnownPlaintext,
			Leaked:    leaked,
			SizeAware: true, // advanced attack
		}
		rate := freqdedup.InferenceRate(
			freqdedup.LocalityAttack(enc.Backup, aux, cfg), enc.Truth, enc.Backup)
		fmt.Printf("%-22s | %12.3f%%\n", scheme, rate*100)
	}

	fmt.Println("\nStorage saving after all backups:")
	for _, scheme := range []freqdedup.DefenseScheme{
		freqdedup.SchemeMLE, freqdedup.SchemeCombined,
	} {
		savings, err := freqdedup.StorageSavings(dataset, scheme, 1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-10s %.2f%%\n", scheme, savings[len(savings)-1]*100)
	}
	fmt.Println("\nThe combined scheme suppresses the attack by orders of magnitude")
	fmt.Println("while giving up only a small slice of deduplication saving.")
}
