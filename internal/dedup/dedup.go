package dedup

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"freqdedup/internal/chunker"
	"freqdedup/internal/fphash"
	"freqdedup/internal/mle"
	"freqdedup/internal/segment"
	"freqdedup/internal/trace"
)

// Encryption selects the client-side encryption pipeline.
type Encryption int

const (
	// EncConvergent encrypts each chunk under its content hash.
	EncConvergent Encryption = iota + 1
	// EncServerAided derives per-chunk keys from a key manager
	// (Config.Deriver).
	EncServerAided
	// EncMinHash derives one key per segment from the segment's minimum
	// fingerprint via Config.Deriver (Algorithm 4).
	EncMinHash
)

// Config configures a Client.
type Config struct {
	// Chunking parameters (chunker.DefaultParams if zero). The Algorithm
	// field selects the boundary function: AlgoRabin (the default) or the
	// faster AlgoGear. The two produce different cut points — a store's
	// dedup ratio is only preserved against backups chunked the same way.
	Chunking chunker.Params
	// ChunkWorkers enables multi-stream chunking: with a value above 1 and
	// AlgoGear, Backup splits the input across that many chunking workers
	// with deterministic cut-point stitching — the chunk sequence is
	// bit-identical to serial gear chunking at any worker count. 0 and 1
	// chunk serially. Requires Chunking.Min >= chunker.GearWindow and is
	// rejected for AlgoRabin (its rolling hash carries unbounded history,
	// so segments cannot be scanned independently).
	ChunkWorkers int
	// Encryption selects the MLE scheme (EncConvergent if zero).
	Encryption Encryption
	// Deriver supplies keys for EncServerAided and EncMinHash. It must be
	// safe for concurrent use when Workers != 1 (the key-manager client
	// and mle.NewLocalDeriver both are).
	Deriver mle.KeyDeriver
	// Segments configures segmentation for EncMinHash and Scramble
	// (segment.DefaultParams if zero).
	Segments segment.Params
	// Scramble enables per-segment upload-order scrambling (Algorithm 5).
	// Restores are unaffected: the recipe preserves original order.
	Scramble bool
	// ScrambleSeed seeds the scrambling RNG. The zero value selects a
	// fresh cryptographically random seed per client, so scrambled upload
	// order is unpredictable run to run (the defense's intent). A nonzero
	// seed makes the upload order a reproducible function of input,
	// config, and seed — for tests and experiments that need bit-for-bit
	// deterministic store layouts.
	ScrambleSeed int64
	// Workers is the number of encrypt+fingerprint workers Backup fans
	// out to (the MLE hot path) and the number of container fetch+decrypt
	// workers Restore fans out to. 0 selects GOMAXPROCS; 1 runs the
	// stages inline. Recipes, store contents, and restored bytes are
	// identical for every worker count: parallelism changes wall-clock
	// time only.
	Workers int
	// RestoreCacheContainers bounds the parallel restore pipeline's
	// container cache, in containers (the cache-size semantics of
	// ddfs.ContainerSpread): a backup whose adjacent chunks were stored
	// into the same containers is restored with few container reads. 0
	// disables the cache — every read batch fetches its container from
	// the store. Restored bytes are identical at every setting.
	RestoreCacheContainers int
	// DegradedRestore turns unrecoverable chunks into zero-filled holes
	// instead of failing the restore: when a chunk is missing or its
	// container is corrupt, Restore writes zeros for the chunk's range,
	// keeps going, and returns a *DegradedError listing every lost range —
	// so after a partial media failure, everything outside the reported
	// ranges is still byte-identical to the original. Other errors (backend
	// I/O failures) still abort. Off by default: a restore either returns
	// the exact original bytes or an error.
	DegradedRestore bool
	// Observer, when non-nil, taps the post-encryption upload stream:
	// it receives every uploaded chunk's ciphertext fingerprint and
	// ciphertext size in upload (wire) order — exactly the Section 3.3
	// adversary view, nothing more (no plaintext, no keys, no recipe
	// order for scrambled uploads). An Observer error aborts the backup.
	Observer UploadObserver
}

// UploadObserver observes a client's post-encryption upload stream — the
// adversary tap of the paper's threat model (Section 3.3), and the feed
// of the repository's durable .fdt trace log. ObserveUpload is called
// from the backup pipeline's consumer goroutine once per upload window,
// after the store acknowledged the window, with the window's chunks in
// upload order; refs is only borrowed for the duration of the call.
// Implementations need not be safe for concurrent use by multiple
// backups, but must tolerate being called from a different goroutine
// than the one that started the backup.
type UploadObserver interface {
	ObserveUpload(refs []trace.ChunkRef) error
}

// Client is the client side of Figure 2: chunk, encrypt, upload. A Client
// is not safe for concurrent use (its scrambling RNG is stateful); run one
// Client per goroutine against a shared Store instead — that is the
// multi-client architecture the store's sharding is built for.
type Client struct {
	cfg     Config
	store   *Store
	rng     *rand.Rand
	obsRefs []trace.ChunkRef // reused observation window (tap enabled only)
}

// NewClient returns a client uploading to store.
func NewClient(store *Store, cfg Config) (*Client, error) {
	if store == nil {
		return nil, errors.New("dedup: nil store")
	}
	if cfg.Chunking == (chunker.Params{}) {
		cfg.Chunking = chunker.DefaultParams()
	}
	if err := cfg.Chunking.Validate(); err != nil {
		return nil, err
	}
	if cfg.Encryption == 0 {
		cfg.Encryption = EncConvergent
	}
	if cfg.Segments == (segment.Params{}) {
		cfg.Segments = segment.DefaultParams()
	}
	if err := cfg.Segments.Validate(); err != nil {
		return nil, err
	}
	switch cfg.Encryption {
	case EncConvergent:
	case EncServerAided, EncMinHash:
		if cfg.Deriver == nil {
			return nil, mle.ErrNoKeyDeriver
		}
	default:
		return nil, fmt.Errorf("dedup: unknown encryption %d", cfg.Encryption)
	}
	if cfg.Workers < 0 {
		return nil, fmt.Errorf("dedup: negative worker count %d", cfg.Workers)
	}
	if cfg.ChunkWorkers < 0 {
		return nil, fmt.Errorf("dedup: negative chunk worker count %d", cfg.ChunkWorkers)
	}
	if cfg.ChunkWorkers > 1 {
		if cfg.Chunking.Algorithm != chunker.AlgoGear {
			return nil, errors.New("dedup: multi-stream chunking requires the gear algorithm (chunker.AlgoGear)")
		}
		if cfg.Chunking.Min < chunker.GearWindow {
			return nil, fmt.Errorf("dedup: multi-stream chunking needs Chunking.Min >= %d, got %d",
				chunker.GearWindow, cfg.Chunking.Min)
		}
	}
	if cfg.RestoreCacheContainers < 0 {
		return nil, fmt.Errorf("dedup: negative restore cache size %d", cfg.RestoreCacheContainers)
	}
	if cfg.Workers == 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	seed := cfg.ScrambleSeed
	if seed == 0 {
		var b [8]byte
		if _, err := crand.Read(b[:]); err != nil {
			return nil, fmt.Errorf("dedup: seed scrambling rng: %w", err)
		}
		seed = int64(binary.LittleEndian.Uint64(b[:]))
	}
	return &Client{cfg: cfg, store: store, rng: rand.New(rand.NewSource(seed))}, nil
}

// encJob is one chunk's slot in an encrypt window: the chunk to encrypt
// and, for EncMinHash, the precomputed segment key.
type encJob struct {
	chunk  chunker.Chunk
	segKey mle.Key
}

// uploadResult is a worker's output for one job: the ciphertext chunk,
// its fingerprint, and the key that must go into the recipe.
type uploadResult struct {
	ct  []byte
	cfp fphash.Fingerprint
	key mle.Key
}

// uploadWindowChunks bounds how many chunks Backup encrypts and uploads at
// a time: ~8 MiB of ciphertext at the default 8 KiB average chunk size,
// and still hundreds of jobs per window so the worker fan-out stays
// saturated.
const uploadWindowChunks = 1024

// chunkQueueDepth is the capacity of the streaming producer's chunk
// channel: enough lookahead that the chunker keeps running while a window
// is being encrypted, small enough that resident plaintext stays bounded
// (depth + window chunks).
const chunkQueueDepth = 256

// Backup chunks, encrypts, and uploads the stream, returning the recipe
// needed to restore it. The recipe must be sealed with the user's key
// before being stored anywhere untrusted (mle.Recipe.Seal).
//
// Backup is a streaming pipeline. A producer goroutine runs the
// content-defined chunker (deferring plaintext SHA-256 out of the serial
// path) and feeds a bounded channel; the consumer gathers fixed-size
// windows and fans each one out to Config.Workers goroutines that derive
// keys, encrypt, and fingerprint ciphertexts, then uploads the window with
// one PutBatch and releases the plaintext buffers back to the chunker
// pool. At most chunkQueueDepth + uploadWindowChunks plaintext chunks are
// resident regardless of stream length.
//
// Scrambling and MinHash encryption need whole-stream segmentation (the
// segment divisor depends on the stream's mean chunk size), so those
// configurations buffer the chunk list and build the upload plan up front,
// exactly like the pre-streaming engine — results are bit-for-bit
// identical to it in every mode, and independent of the worker and shard
// counts.
//
// If Backup returns an error, the chunking goroutine may still be
// completing one final in-progress read of r before it shuts down. Do not
// reuse, reset, or close a non-thread-safe r immediately after a failed
// Backup; readers that tolerate concurrent use (*os.File) are unaffected.
func (c *Client) Backup(r io.Reader) (*mle.Recipe, error) {
	return c.BackupContext(context.Background(), r)
}

// BackupContext is Backup with cancellation: when ctx is cancelled the
// pipeline stops promptly — the consumer returns ctx.Err() without waiting
// for an in-progress read of r, the encrypt fan-out aborts between chunks,
// and every pooled chunk buffer still in flight is handed back to the pool
// (the same drain contract as any other mid-backup error). Chunks uploaded
// before the cancellation remain in the store, where they deduplicate a
// retried backup or are reclaimed by the next GC.
func (c *Client) BackupContext(ctx context.Context, r io.Reader) (*mle.Recipe, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	params := c.cfg.Chunking
	params.DeferFingerprint = true
	var (
		cdc chunker.Chunker
		err error
	)
	if c.cfg.ChunkWorkers > 1 && params.Algorithm == chunker.AlgoGear {
		cdc, err = chunker.NewMultiGear(r, params, c.cfg.ChunkWorkers)
	} else {
		cdc, err = chunker.New(r, params)
	}
	if err != nil {
		return nil, err
	}
	if c.cfg.Scramble || c.cfg.Encryption == EncMinHash {
		return c.backupPlanned(ctx, cdc)
	}
	return c.backupStreaming(ctx, cdc)
}

// closeChunker winds down chunkers that own pipeline goroutines and
// pooled buffers (the multi-stream gear chunker); serial chunkers have
// nothing to release. It must not race the chunker's Next.
func closeChunker(c chunker.Chunker) {
	if mc, ok := c.(interface{ Close() error }); ok {
		_ = mc.Close()
	}
}

// chunkMsg is one producer-to-consumer handoff: a chunk or a chunking
// error.
type chunkMsg struct {
	chunk chunker.Chunk
	err   error
}

// backupStreaming is the bounded streaming path for configurations whose
// upload order is the chunk order (no scrambling, no segment keys): chunks
// flow from the producer goroutine through window-sized encrypt fan-outs
// straight into the store, and never accumulate beyond the pipeline bound.
func (c *Client) backupStreaming(ctx context.Context, cdc chunker.Chunker) (*mle.Recipe, error) {
	chunks := make(chan chunkMsg, chunkQueueDepth)
	done := make(chan struct{})
	window := make([]encJob, 0, uploadWindowChunks)
	// On any return, stop the producer and hand every chunk still in
	// flight — buffered in the channel or gathered in an unflushed window —
	// back to the chunker pool, so repeated failing backups stay as
	// allocation-lean as successful ones. The channel is drained on a
	// goroutine: the producer may be blocked in a stalled Read, and an
	// error return must not wait for it. On the success path the channel
	// is already closed and drained and the window is empty, so this is a
	// no-op.
	defer func() {
		close(done)
		go func() {
			for msg := range chunks {
				msg.chunk.Release()
			}
		}()
		for i := range window {
			window[i].chunk.Release()
		}
	}()
	go func() {
		defer close(chunks)
		// The producer is the chunker's sole consumer, so it owns the
		// teardown: for a multi-stream chunker this reclaims the pipeline's
		// goroutines and pooled segment buffers. An error return of Backup
		// does not wait for it (see Backup's doc on in-flight reads).
		defer closeChunker(cdc)
		for {
			// Stop before touching the reader again once the consumer has
			// bailed: the drain goroutine keeps the send case below ready,
			// so the select alone would let the producer keep issuing
			// reads on a reader the caller owns again after the error
			// return. At most the one in-flight cdc.Next — which may span
			// several reads while filling its lookahead — escapes (see
			// Backup's doc).
			select {
			case <-done:
				return
			default:
			}
			ch, err := cdc.Next()
			if errors.Is(err, io.EOF) {
				return
			}
			var msg chunkMsg
			if err != nil {
				msg = chunkMsg{err: fmt.Errorf("dedup: chunking: %w", err)}
			} else {
				msg = chunkMsg{chunk: ch}
			}
			select {
			case chunks <- msg:
			case <-done:
				// The consumer bailed; reclaim the undelivered chunk
				// (Release on the zero chunk of an error message is a
				// no-op).
				ch.Release()
				return
			}
			if err != nil {
				return
			}
		}
	}()

	recipe := &mle.Recipe{}
	results := make([]uploadResult, uploadWindowChunks)
	batch := make([]PutChunk, 0, uploadWindowChunks)
	flush := func() error {
		if len(window) == 0 {
			return nil
		}
		res := results[:len(window)]
		if err := c.runEncryptStage(ctx, window, res); err != nil {
			return err
		}
		batch = batch[:0]
		for _, r := range res {
			batch = append(batch, PutChunk{FP: r.cfp, Data: r.ct})
			recipe.Entries = append(recipe.Entries, mle.RecipeEntry{
				Fingerprint: r.cfp,
				Key:         r.key,
				Size:        uint32(len(r.ct)),
			})
		}
		// Ownership transfer: the ciphertexts were freshly allocated by the
		// encrypt stage and are never touched again, so the store may keep
		// them without its defensive copy.
		if _, err := c.store.PutBatchOwned(batch); err != nil {
			return fmt.Errorf("dedup: upload: %w", err)
		}
		if err := c.observeWindow(res); err != nil {
			return err
		}
		for i := range window {
			window[i].chunk.Release()
		}
		window = window[:0]
		return nil
	}
	// Receive with a cancellation arm: when ctx fires the consumer must
	// return promptly even if the producer is parked in a stalled Read and
	// will never send again. The deferred cleanup stops the producer and
	// drains the channel.
	for {
		var msg chunkMsg
		var ok bool
		select {
		case msg, ok = <-chunks:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		if !ok {
			break
		}
		if msg.err != nil {
			return nil, msg.err
		}
		window = append(window, encJob{chunk: msg.chunk})
		if len(window) == uploadWindowChunks {
			if err := flush(); err != nil {
				return nil, err
			}
		}
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return recipe, nil
}

// backupPlanned is the whole-stream planning path for scrambling and
// MinHash encryption: drain the chunker, fingerprint the plaintext chunks
// with the worker pool, segment, fix the upload plan (consuming the
// scrambling RNG on this goroutine so the plan is a deterministic function
// of input, config, and seed), then encrypt and upload in bounded windows
// of the plan.
func (c *Client) backupPlanned(ctx context.Context, cdc chunker.Chunker) (*mle.Recipe, error) {
	var chunks []chunker.Chunk
	// Wind the chunker down on every exit. After a complete drain this is
	// synchronous (the chunker has already stopped); on an early error the
	// teardown runs on a goroutine, because a multi-stream chunker's Close
	// waits out an in-flight read of r that an error return must not wait
	// for (see Backup's doc).
	drained := false
	defer func() {
		if drained {
			closeChunker(cdc)
		} else {
			go closeChunker(cdc)
		}
	}()
	// On any error return — including cancellation mid-drain — hand back
	// every chunk the upload loop has not yet released (released chunks
	// are marked by a nil Data, for which Release is a no-op): the planned
	// path holds the whole stream's chunks, so a failed backup would
	// otherwise abandon all of them to the GC. On the success path
	// everything is already released.
	defer func() {
		for i := range chunks {
			chunks[i].Release()
		}
	}()
	// Drain the chunker serially (the plan needs the whole stream),
	// checking for cancellation between chunks.
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		ch, err := cdc.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dedup: chunking: %w", err)
		}
		chunks = append(chunks, ch)
	}
	drained = true
	if len(chunks) == 0 {
		return &mle.Recipe{}, nil
	}

	// Plaintext fingerprints were deferred out of the chunker; compute
	// them with the worker fan-out (segmentation and MinHash need them).
	if err := c.parallelFor(ctx, len(chunks), func(i int) error {
		chunks[i].Fingerprint = fphash.FromBytes(chunks[i].Data)
		return nil
	}); err != nil {
		return nil, err
	}

	// Recipe entries are in original chunk order; uploads may be
	// scrambled.
	recipe := &mle.Recipe{Entries: make([]mle.RecipeEntry, len(chunks))}

	refs := make([]trace.ChunkRef, len(chunks))
	for i, ch := range chunks {
		refs[i] = trace.ChunkRef{FP: ch.Fingerprint, Size: uint32(ch.Size())}
	}
	segs, err := segment.Split(refs, c.cfg.Segments)
	if err != nil {
		return nil, err
	}

	// Build the upload plan: per-segment keys (MinHash) and the exact
	// chunk order the store will see.
	type planEntry struct {
		chunkIdx int
		segKey   mle.Key
	}
	plan := make([]planEntry, 0, len(chunks))
	for _, s := range segs {
		var segKey mle.Key
		if c.cfg.Encryption == EncMinHash {
			fps := make([]fphash.Fingerprint, 0, s.Len())
			for _, ref := range refs[s.Start:s.End] {
				fps = append(fps, ref.FP)
			}
			segKey, err = mle.NewMinHash(c.cfg.Deriver).SegmentKey(fps)
			if err != nil {
				return nil, err
			}
		}

		order := make([]int, s.Len())
		for i := range order {
			order[i] = s.Start + i
		}
		if c.cfg.Scramble {
			order = scrambleOrder(order, c.rng)
		}
		for _, idx := range order {
			plan = append(plan, planEntry{chunkIdx: idx, segKey: segKey})
		}
	}

	// Encrypt and upload in bounded windows of the plan, so at most one
	// window of ciphertext is resident alongside the plaintext chunks
	// (CTR is length-preserving; an unbounded batch would double peak
	// memory). Windows run in plan order and each PutBatch preserves
	// batch order within a shard, so the store sees exactly the serial
	// sequence regardless of window boundaries.
	window := make([]encJob, 0, uploadWindowChunks)
	results := make([]uploadResult, uploadWindowChunks)
	batch := make([]PutChunk, 0, uploadWindowChunks)
	for lo := 0; lo < len(plan); lo += uploadWindowChunks {
		hi := lo + uploadWindowChunks
		if hi > len(plan) {
			hi = len(plan)
		}
		window = window[:0]
		for _, pe := range plan[lo:hi] {
			window = append(window, encJob{chunk: chunks[pe.chunkIdx], segKey: pe.segKey})
		}
		res := results[:len(window)]
		if err := c.runEncryptStage(ctx, window, res); err != nil {
			return nil, err
		}
		batch = batch[:0]
		for p, r := range res {
			batch = append(batch, PutChunk{FP: r.cfp, Data: r.ct})
			recipe.Entries[plan[lo+p].chunkIdx] = mle.RecipeEntry{
				Fingerprint: r.cfp,
				Key:         r.key,
				Size:        uint32(len(r.ct)),
			}
		}
		if _, err := c.store.PutBatchOwned(batch); err != nil {
			return nil, fmt.Errorf("dedup: upload: %w", err)
		}
		if err := c.observeWindow(res); err != nil {
			return nil, err
		}
		// Each chunk appears in exactly one plan slot, so this window's
		// plaintext buffers are dead once encrypted and uploaded. Release
		// through the chunks slice and nil the Data there so the deferred
		// error-path cleanup never double-releases.
		for _, pe := range plan[lo:hi] {
			chunks[pe.chunkIdx].Release()
			chunks[pe.chunkIdx].Data = nil
		}
	}
	return recipe, nil
}

// parallelFor runs fn(0..n-1) on min(Config.Workers, n) goroutines pulling
// indexes from a shared atomic counter. The first error stops the fan-out
// and is returned; a cancelled ctx stops it between items and returns
// ctx.Err(). With one worker (or one item) it runs inline.
func (c *Client) parallelFor(ctx context.Context, n int, fn func(i int) error) error {
	workers := c.cfg.Workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next     atomic.Int64
		failed   atomic.Bool
		errMu    sync.Mutex
		firstErr error
		wg       sync.WaitGroup
	)
	record := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
		failed.Store(true)
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for !failed.Load() {
				if err := ctx.Err(); err != nil {
					record(err)
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					record(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// observeWindow feeds one acknowledged upload window to the configured
// observer: ciphertext fingerprints and ciphertext sizes in upload order.
// The scratch slice is reused across windows; the observer only borrows
// it. A nil observer costs one branch.
func (c *Client) observeWindow(res []uploadResult) error {
	if c.cfg.Observer == nil {
		return nil
	}
	if cap(c.obsRefs) < len(res) {
		c.obsRefs = make([]trace.ChunkRef, len(res))
	}
	refs := c.obsRefs[:len(res)]
	for i, r := range res {
		refs[i] = trace.ChunkRef{FP: r.cfp, Size: uint32(len(r.ct))}
	}
	if err := c.cfg.Observer.ObserveUpload(refs); err != nil {
		return fmt.Errorf("dedup: upload observer: %w", err)
	}
	return nil
}

// runEncryptStage executes the fan-out stage of the backup pipeline:
// Workers goroutines pull jobs from the window, derive the chunk key,
// encrypt, and fingerprint the ciphertext. Results land at their window
// position, so the output order is independent of goroutine scheduling.
func (c *Client) runEncryptStage(ctx context.Context, jobs []encJob, results []uploadResult) error {
	return c.parallelFor(ctx, len(jobs), func(i int) error {
		return c.encryptOne(jobs[i], &results[i])
	})
}

// encryptOne processes one job: key derivation, deterministic encryption,
// and ciphertext fingerprinting for one chunk. Plaintext fingerprinting
// was deferred out of the chunker, so modes that need it (server-aided key
// derivation) compute it here, inside the worker fan-out; convergent
// encryption never needs it at all.
func (c *Client) encryptOne(job encJob, res *uploadResult) error {
	ch := job.chunk
	var key mle.Key
	switch c.cfg.Encryption {
	case EncConvergent:
		key = mle.ConvergentKey(ch.Data)
	case EncServerAided:
		fp := ch.Fingerprint
		if fp.IsZero() {
			fp = fphash.FromBytes(ch.Data)
		}
		var err error
		key, err = c.cfg.Deriver.DeriveKey(fp)
		if err != nil {
			return fmt.Errorf("dedup: derive key: %w", err)
		}
	case EncMinHash:
		key = job.segKey
	}
	ct := mle.EncryptDeterministic(key, ch.Data)
	*res = uploadResult{ct: ct, cfp: fphash.FromBytes(ct), key: key}
	return nil
}

// scrambleOrder applies Algorithm 5's front/back shuffle to a slice of
// indices.
func scrambleOrder(in []int, rng *rand.Rand) []int {
	n := len(in)
	buf := make([]int, 2*n)
	front, back := n, n
	for _, v := range in {
		if rng.Intn(2) == 1 {
			front--
			buf[front] = v
		} else {
			buf[back] = v
			back++
		}
	}
	return buf[front:back]
}
