package bloom

import (
	"freqdedup/internal/fphash"

	"errors"
	"testing"
)

func TestCodecRoundTrip(t *testing.T) {
	f := NewWithEstimates(1000, 0.01)
	for i := uint64(0); i < 1000; i++ {
		f.Add(fphash.FromUint64(i))
	}
	buf := f.AppendBinary(nil)
	if len(buf) != f.MarshaledSize() {
		t.Fatalf("MarshaledSize = %d, AppendBinary wrote %d", f.MarshaledSize(), len(buf))
	}
	g, n, err := Unmarshal(buf)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if n != len(buf) {
		t.Fatalf("consumed %d of %d bytes", n, len(buf))
	}
	if g.Bits() != f.Bits() || g.K() != f.K() || g.Count() != f.Count() {
		t.Fatalf("geometry changed: m %d->%d k %d->%d count %d->%d", f.Bits(), g.Bits(), f.K(), g.K(), f.Count(), g.Count())
	}
	for i := uint64(0); i < 1000; i++ {
		if !g.Contains(fphash.FromUint64(i)) {
			t.Fatalf("decoded filter lost fingerprint %d", i)
		}
	}
}

func TestCodecTrailingBytesIgnored(t *testing.T) {
	f := NewWithEstimates(10, 0.01)
	f.Add(fphash.FromUint64(1))
	buf := f.AppendBinary(nil)
	want := len(buf)
	buf = append(buf, 0xde, 0xad, 0xbe, 0xef)
	_, n, err := Unmarshal(buf)
	if err != nil {
		t.Fatalf("Unmarshal with trailing bytes: %v", err)
	}
	if n != want {
		t.Fatalf("consumed %d, want %d", n, want)
	}
}

func TestCodecCorruption(t *testing.T) {
	f := NewWithEstimates(100, 0.01)
	for i := uint64(0); i < 100; i++ {
		f.Add(fphash.FromUint64(i))
	}
	good := f.AppendBinary(nil)

	for _, tc := range []struct {
		name   string
		mangle func([]byte) []byte
	}{
		{"truncated", func(b []byte) []byte { return b[:len(b)/2] }},
		{"empty", func(b []byte) []byte { return nil }},
		{"bad magic", func(b []byte) []byte { b[0] ^= 0xff; return b }},
		{"bit flip in words", func(b []byte) []byte { b[len(b)/2] ^= 0x10; return b }},
		{"bad crc", func(b []byte) []byte { b[len(b)-1] ^= 0x01; return b }},
		{"forged m", func(b []byte) []byte { b[4] = 0xff; b[5] = 0xff; b[6] = 0xff; return b }},
		{"zero k", func(b []byte) []byte { b[12], b[13], b[14], b[15] = 0, 0, 0, 0; return b }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			buf := tc.mangle(append([]byte(nil), good...))
			if _, _, err := Unmarshal(buf); !errors.Is(err, ErrCodec) {
				t.Fatalf("Unmarshal(%s) = %v, want ErrCodec", tc.name, err)
			}
		})
	}
}
