package dedup

import (
	"bytes"
	"errors"
	"testing"

	"freqdedup/internal/mle"
)

// setupTwoBackups stores two versions sharing most content and registers
// both, returning the store, client, and recipes.
func setupTwoBackups(t *testing.T) (*Store, *Client, *mle.Recipe, *mle.Recipe) {
	t.Helper()
	store := NewStore(64 << 10)
	client, err := NewClient(store, Config{})
	if err != nil {
		t.Fatal(err)
	}
	v1 := randData(21, 1<<20)
	v2 := mutate(v1, 22)
	r1, err := client.Backup(bytes.NewReader(v1))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := client.Backup(bytes.NewReader(v2))
	if err != nil {
		t.Fatal(err)
	}
	if err := store.RegisterBackup("b1", r1); err != nil {
		t.Fatal(err)
	}
	if err := store.RegisterBackup("b2", r2); err != nil {
		t.Fatal(err)
	}
	return store, client, r1, r2
}

func TestGCReclaimsNothingWhileReferenced(t *testing.T) {
	store, client, r1, r2 := setupTwoBackups(t)
	before := store.Stats().PhysicalBytes
	st, err := store.GC()
	if err != nil {
		t.Fatal(err)
	}
	if st.ChunksReclaimed != 0 || st.BytesReclaimed != 0 {
		t.Fatalf("GC reclaimed referenced data: %+v", st)
	}
	if store.Stats().PhysicalBytes != before {
		t.Fatal("physical bytes changed without reclamation")
	}
	// Both backups still restore.
	for _, r := range []*mle.Recipe{r1, r2} {
		var out bytes.Buffer
		if err := client.Restore(r, &out); err != nil {
			t.Fatal(err)
		}
	}
}

func TestGCReclaimsAfterDelete(t *testing.T) {
	store, client, r1, r2 := setupTwoBackups(t)
	before := store.Stats().PhysicalBytes
	if err := store.DeleteBackup("b1"); err != nil {
		t.Fatal(err)
	}
	st, err := store.GC()
	if err != nil {
		t.Fatal(err)
	}
	if st.ChunksReclaimed == 0 || st.BytesReclaimed == 0 {
		t.Fatalf("GC reclaimed nothing after deleting a backup: %+v", st)
	}
	after := store.Stats().PhysicalBytes
	if after != before-st.BytesReclaimed {
		t.Fatalf("physical accounting wrong: %d != %d - %d", after, before, st.BytesReclaimed)
	}
	// The surviving backup must still restore bit-for-bit after container
	// compaction relocated its chunks.
	var out bytes.Buffer
	if err := client.Restore(r2, &out); err != nil {
		t.Fatalf("surviving backup broken after GC: %v", err)
	}
	// The deleted backup's unique chunks must be gone.
	var missing int
	for _, e := range r1.Entries {
		if _, err := store.Get(e.Fingerprint); errors.Is(err, ErrNotFound) {
			missing++
		}
	}
	if missing == 0 {
		t.Fatal("no chunk of the deleted backup was reclaimed")
	}
}

func TestGCDeleteAllBackups(t *testing.T) {
	store, _, _, _ := setupTwoBackups(t)
	if err := store.DeleteBackup("b1"); err != nil {
		t.Fatal(err)
	}
	if err := store.DeleteBackup("b2"); err != nil {
		t.Fatal(err)
	}
	if _, err := store.GC(); err != nil {
		t.Fatal(err)
	}
	if store.Stats().PhysicalBytes != 0 {
		t.Fatalf("physical bytes %d after deleting everything", store.Stats().PhysicalBytes)
	}
	if store.UniqueChunks() != 0 {
		t.Fatalf("%d chunks survive with no backups", store.UniqueChunks())
	}
}

func TestDeleteBackupErrors(t *testing.T) {
	store := NewStore(0)
	if err := store.DeleteBackup("nope"); !errors.Is(err, ErrUnknownBackup) {
		t.Fatalf("err = %v, want ErrUnknownBackup", err)
	}
}

func TestRegisterBackupDuplicateID(t *testing.T) {
	store := NewStore(0)
	r := &mle.Recipe{}
	if err := store.RegisterBackup("a", r); err != nil {
		t.Fatal(err)
	}
	if err := store.RegisterBackup("a", r); err == nil {
		t.Fatal("duplicate backup id accepted")
	}
	if got := store.Backups(); len(got) != 1 || got[0] != "a" {
		t.Fatalf("Backups() = %v", got)
	}
}

func TestBackupsSorted(t *testing.T) {
	store := NewStore(0)
	r := &mle.Recipe{}
	for _, id := range []string{"w", "a", "m", "c", "z", "b"} {
		if err := store.RegisterBackup(id, r); err != nil {
			t.Fatal(err)
		}
	}
	want := []string{"a", "b", "c", "m", "w", "z"}
	for try := 0; try < 5; try++ {
		got := store.Backups()
		if len(got) != len(want) {
			t.Fatalf("Backups() = %v, want %v", got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("Backups() = %v, want sorted %v", got, want)
			}
		}
	}
}

func TestGCIdempotent(t *testing.T) {
	store, client, _, r2 := setupTwoBackups(t)
	if err := store.DeleteBackup("b1"); err != nil {
		t.Fatal(err)
	}
	if _, err := store.GC(); err != nil {
		t.Fatal(err)
	}
	st, err := store.GC()
	if err != nil {
		t.Fatal(err)
	}
	if st.ChunksReclaimed != 0 {
		t.Fatalf("second GC reclaimed %d chunks", st.ChunksReclaimed)
	}
	var out bytes.Buffer
	if err := client.Restore(r2, &out); err != nil {
		t.Fatal(err)
	}
}

func TestGCSharedChunksSurvive(t *testing.T) {
	// A chunk referenced by two backups must survive deleting one of them.
	store := NewStore(0)
	client, err := NewClient(store, Config{})
	if err != nil {
		t.Fatal(err)
	}
	data := randData(33, 256<<10)
	r1, err := client.Backup(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := client.Backup(bytes.NewReader(data)) // identical content
	if err != nil {
		t.Fatal(err)
	}
	if err := store.RegisterBackup("x", r1); err != nil {
		t.Fatal(err)
	}
	if err := store.RegisterBackup("y", r2); err != nil {
		t.Fatal(err)
	}
	if err := store.DeleteBackup("x"); err != nil {
		t.Fatal(err)
	}
	st, err := store.GC()
	if err != nil {
		t.Fatal(err)
	}
	if st.ChunksReclaimed != 0 {
		t.Fatalf("GC reclaimed %d chunks still referenced by backup y", st.ChunksReclaimed)
	}
	var out bytes.Buffer
	if err := client.Restore(r2, &out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), data) {
		t.Fatal("shared-chunk restore failed after GC")
	}
}
