package dedup

import (
	"context"
	"fmt"

	"freqdedup/internal/container"
	"freqdedup/internal/fphash"
)

// RepairStats aggregates a whole-store repair.
type RepairStats struct {
	// ContainersQuarantined is the number of unreadable containers
	// dropped (and, where the backend supports it, preserved under
	// quarantine/).
	ContainersQuarantined int
	// ChunksLost is the number of distinct chunks the store no longer
	// holds after the repair: entries of quarantined containers plus
	// entries whose content failed fingerprint verification.
	ChunksLost int
	// BytesLost is the measurable total size of the lost chunks.
	BytesLost uint64
	// QuarantinePaths lists the preserved raw records of damaged
	// containers.
	QuarantinePaths []string
}

// Repair is the store-level fsck: every shard is scanned tolerantly,
// containers that cannot be read are quarantined and dropped, entries
// whose content no longer matches their fingerprint are dropped, the
// survivors are repacked densely, and the fingerprint index is rebuilt
// from the surviving layout — so after a nil return, Contains, Get, and
// Restore agree exactly with what is physically readable, and a
// FileBackend opened in salvage mode is writable again.
//
// Repair stops the world: every shard is locked for the duration, like
// GC. Reference counts are untouched (they describe what snapshots
// reference, not what the store holds); callers tracking retention
// should follow a damaging repair with ResetRetention + re-registration
// so GC never double-decrements a lost chunk. Cancelling ctx between
// shards returns ctx.Err(); already-repaired shards keep their repaired
// state.
func (s *Store) Repair(ctx context.Context) (RepairStats, error) {
	s.lockAll()
	defer s.unlockAll()
	var total RepairStats
	for si, sh := range s.shards {
		if err := ctx.Err(); err != nil {
			return total, err
		}
		// Same layout-change protocol as GC: repair renumbers containers,
		// so a persistent index marks the rewrite durably first.
		if err := sh.index.beginLayoutChange(); err != nil {
			return total, fmt.Errorf("dedup: repair shard %d: mark index: %w", si, err)
		}
		oldCount := sh.index.count()
		newIndex := make(map[fphash.Fingerprint]container.Location, oldCount)
		var newBytes uint64
		st, err := sh.containers.Repair(func(e container.Entry, loc container.Location) {
			newIndex[e.FP] = loc
			newBytes += uint64(e.Size)
		})
		if err != nil {
			if aerr := sh.index.abortLayoutChange(); aerr != nil {
				return total, fmt.Errorf("dedup: repair shard %d: %w (and unmark index: %v)", si, err, aerr)
			}
			return total, fmt.Errorf("dedup: repair shard %d: %w", si, err)
		}
		// Chunks lost = index shrinkage, not the raw entry count: a
		// duplicate entry dropped while another copy survives loses
		// nothing.
		lost := oldCount - len(newIndex)
		if lost < 0 {
			lost = 0
		}
		if err := sh.index.completeLayoutChange(newIndex, sh.containers.Sealed()); err != nil {
			return total, fmt.Errorf("dedup: repair shard %d: rebuild index: %w", si, err)
		}
		// Post-repair statistics follow reopen semantics: each surviving
		// unique chunk counts once; cross-repair logical history is gone.
		sh.physicalBytes = newBytes
		sh.logicalBytes = newBytes
		sh.logicalChunks = len(newIndex)
		total.ContainersQuarantined += st.ContainersQuarantined
		total.ChunksLost += lost
		total.BytesLost += st.BytesLost
		total.QuarantinePaths = append(total.QuarantinePaths, st.QuarantinePaths...)
	}
	return total, nil
}
