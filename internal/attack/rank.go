package attack

import "slices"

// This file is the frequency-analysis kernel shared by every attack:
// ranking and rank-matching, operating on flat value entries. It mirrors
// the legacy core engine's semantics exactly — comparator, tie orders,
// and the index-sort threshold — because the golden-equivalence suite
// holds the two engines to bit-identical output.

// rankCompare orders entries by descending frequency. When posTies is
// set, ties break by first stream occurrence (neighbor-table analyses);
// otherwise by fingerprint (whole-stream analyses — arbitrary, as in the
// paper). Fingerprint order is the final key either way, so the order is
// total and the ranked result is independent of the input permutation —
// which is what makes results identical at every shard count.
func rankCompare(a, b freqEntry, posTies bool) int {
	if d := b.stat.count - a.stat.count; d != 0 {
		return int(d)
	}
	if posTies {
		if d := a.stat.first - b.stat.first; d != 0 {
			return int(d)
		}
	}
	au, bu := a.fp.Uint64(), b.fp.Uint64()
	switch {
	case au < bu:
		return -1
	case au > bu:
		return 1
	}
	return 0
}

// rankIndexThreshold is the table size above which rank sorts an index
// array instead of the entries themselves: past a couple thousand entries
// the sort's data movement (24-byte elements) costs more than the final
// permutation pass, while tiny neighbor rows sort faster in place.
const rankIndexThreshold = 2048

// rank sorts entries into matching order in place and returns the slice.
func rank(entries []freqEntry, posTies bool) []freqEntry {
	if len(entries) >= rankIndexThreshold {
		order := make([]int32, len(entries))
		for i := range order {
			order[i] = int32(i)
		}
		slices.SortFunc(order, func(i, j int32) int { return rankCompare(entries[i], entries[j], posTies) })
		out := make([]freqEntry, len(entries))
		for k, i := range order {
			out[k] = entries[i]
		}
		copy(entries, out)
		return entries
	}
	if posTies {
		slices.SortFunc(entries, func(a, b freqEntry) int { return rankCompare(a, b, true) })
	} else {
		slices.SortFunc(entries, func(a, b freqEntry) int { return rankCompare(a, b, false) })
	}
	return entries
}

// freqAnalysis pairs the i-th most frequent ciphertext entry with the
// i-th most frequent plaintext entry, returning at most x pairs (x <= 0
// means unbounded) — the FREQ-ANALYSIS function of Algorithms 1 and 2.
// The entry slices are sorted in place.
func freqAnalysis(ec, em []freqEntry, x int, sizeAware, posTies bool) []Pair {
	if sizeAware {
		return freqAnalysisBySize(ec, em, x, posTies)
	}
	rc := rank(ec, posTies)
	rm := rank(em, posTies)
	n := len(rc)
	if len(rm) < n {
		n = len(rm)
	}
	if x > 0 && x < n {
		n = x
	}
	if n == 0 {
		return nil
	}
	pairs := make([]Pair, n)
	for i := 0; i < n; i++ {
		pairs[i] = Pair{C: rc[i].fp, M: rm[i].fp}
	}
	return pairs
}

// blocks returns the chunk size in 16-byte cipher blocks, ceil(size/16)
// (Algorithm 3's CLASSIFY step).
func blocks(size uint32) uint32 {
	return (size + 15) / 16
}

// freqAnalysisBySize is the advanced attack's frequency analysis
// (Algorithm 3): entries are classified by size in cipher blocks and rank
// matching happens within each size class, up to x pairs per class.
func freqAnalysisBySize(ec, em []freqEntry, x int, posTies bool) []Pair {
	classify := func(entries []freqEntry) map[uint32][]freqEntry {
		by := make(map[uint32][]freqEntry)
		for _, e := range entries {
			cls := blocks(e.size)
			by[cls] = append(by[cls], e)
		}
		for cls, list := range by {
			by[cls] = rank(list, posTies)
		}
		return by
	}
	bc := classify(ec)
	bm := classify(em)

	classes := make([]uint32, 0, len(bc))
	for s := range bc {
		if _, ok := bm[s]; ok {
			classes = append(classes, s)
		}
	}
	slices.Sort(classes)

	var pairs []Pair
	for _, s := range classes {
		rc, rm := bc[s], bm[s]
		n := len(rc)
		if len(rm) < n {
			n = len(rm)
		}
		if x > 0 && x < n {
			n = x
		}
		for i := 0; i < n; i++ {
			pairs = append(pairs, Pair{C: rc[i].fp, M: rm[i].fp})
		}
	}
	return pairs
}
