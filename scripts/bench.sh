#!/bin/sh
# Benchmark baseline runner: runs the throughput-critical benchmark suite
# (backup pipeline, the multi-tenant server's loopback client sweep,
# restore pipeline with its container-cache sweep,
# sharded store, chunker, Rabin primitives, legacy and streaming attack
# engines — BenchmarkAttackStreaming's shard sweep and the trace-log
# ingest/replay MB/s — plus the per-workload trace generators,
# BenchmarkWorkloadGenerate) with -benchmem and writes the results as a dated
# JSON baseline (BENCH_<date>.json) for regression tracking across PRs.
#
#   scripts/bench.sh              # 10 pinned iterations per benchmark
#   BENCHTIME=1s scripts/bench.sh # time-based iteration count
#
# The default is pinned (10x) rather than time-based so baselines live in
# the same measurement regime as cmd/benchgate's fresh runs — a 1s
# auto-tuned baseline is systematically warmer (hundreds of iterations)
# than a pinned run and would read as a phantom regression.
#   scripts/bench.sh --smoke      # one iteration each, no JSON (the
#                                 # `make check` / check.sh rot gate)
#
# This file is the single source of the tracked-benchmark pattern; the
# Makefile and scripts/check.sh run the smoke mode through it.
set -eu

cd "$(dirname "$0")/.."

PATTERN='BenchmarkBackup|BenchmarkServerBackup|BenchmarkRestoreSerial|BenchmarkRestoreParallel|BenchmarkStoreShards|BenchmarkChunker|BenchmarkRabin|BenchmarkContentDefined|BenchmarkFixed|BenchmarkBasicAttackFSL|BenchmarkLocalityAttackFSL|BenchmarkAdvancedAttackFSL|BenchmarkBasicAttackStreamFSL|BenchmarkLocalityAttackStreamFSL|BenchmarkAdvancedAttackStreamFSL|BenchmarkAttackStreaming|BenchmarkTraceLogIngest|BenchmarkTraceLogReplay|BenchmarkWorkloadGenerate'
PKGS='. ./internal/chunker ./internal/rabin ./internal/attack ./internal/tracelog ./internal/workload'

if [ "${1:-}" = "--smoke" ]; then
	smokelog="$(mktemp)"
	trap 'rm -f "$smokelog"' EXIT
	# shellcheck disable=SC2086
	if ! go test -run=NONE -bench "$PATTERN" -benchtime=1x $PKGS >"$smokelog" 2>&1; then
		cat "$smokelog"
		echo "bench smoke: FAILED"
		exit 1
	fi
	echo "bench smoke: OK"
	exit 0
fi

BENCHTIME="${BENCHTIME:-10x}"
date="$(date -u +%Y%m%d)"
out="BENCH_${date}.json"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

# Capture first and check the exit status — a pipeline into tee would
# report tee's status and let a failing benchmark write a bogus baseline.
# shellcheck disable=SC2086
if ! go test -run=NONE -bench "$PATTERN" -benchmem -benchtime "$BENCHTIME" \
	$PKGS >"$tmp" 2>&1; then
	cat "$tmp"
	echo "bench: FAILED, no baseline written" >&2
	exit 1
fi
cat "$tmp"

# CPU model and frequency governor go into the header so cmd/benchgate can
# refuse to treat cross-hardware timing deltas as regressions; "unknown"
# when the platform does not expose them (containers often hide sysfs).
cpu="$(awk -F: '/^model name/ { sub(/^[ \t]+/, "", $2); print $2; exit }' /proc/cpuinfo 2>/dev/null || true)"
[ -n "$cpu" ] || cpu="unknown"
governor="$(cat /sys/devices/system/cpu/cpu0/cpufreq/scaling_governor 2>/dev/null || true)"
[ -n "$governor" ] || governor="unknown"

awk -v goversion="$(go version)" -v maxprocs="${GOMAXPROCS:-$(nproc 2>/dev/null || echo 0)}" -v date="$date" -v cpu="$cpu" -v governor="$governor" '
BEGIN {
	printf "{\n  \"date\": \"%s\",\n  \"go\": \"%s\",\n  \"cpu\": \"%s\",\n  \"governor\": \"%s\",\n  \"gomaxprocs\": %s,\n  \"benchmarks\": [\n", date, goversion, cpu, governor, maxprocs
	first = 1
}
/^Benchmark/ {
	name = $1
	iters = $2
	metrics = ""
	for (i = 3; i + 1 <= NF; i += 2) {
		metrics = metrics sprintf("%s\"%s\": %s", (metrics == "") ? "" : ", ", $(i + 1), $i)
	}
	if (!first) printf ",\n"
	first = 0
	printf "    {\"name\": \"%s\", \"iterations\": %s, %s}", name, iters, metrics
}
END { printf "\n  ]\n}\n" }
' "$tmp" >"$out"

echo "wrote $out"
