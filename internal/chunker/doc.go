// Package chunker partitions byte streams into chunks, the first stage of
// the deduplication pipeline (Section 2.1 of the paper).
//
// Two chunkers are provided:
//
//   - Fixed: fixed-size chunking, as used by the paper's VM dataset (4 KB
//     chunks of virtual machine images).
//   - ContentDefined: variable-size content-defined chunking driven by a
//     rolling Rabin fingerprint, with configurable minimum, average, and
//     maximum chunk sizes, as used by the FSL and synthetic datasets (8 KB
//     average).
//
// Both implement the Chunker interface and stream from an io.Reader, so
// arbitrarily large inputs can be chunked with bounded memory.
//
// # Ingest path
//
// ContentDefined reads directly into a fixed lookahead buffer and scans it
// with the bulk Rabin APIs (rabin.Hash.Update / rabin.Hash.Scan), keeping
// the fingerprint and window state in registers for whole buffer slices
// instead of making one method call per byte. Because the rolling hash is
// reset at every chunk start and a boundary is only legal after Min bytes,
// the bytes before Min-window need never be hashed at all — the fingerprint
// at any position depends only on the trailing window. Each emitted chunk
// is copied exactly once, from the lookahead buffer into its own buffer;
// the seed implementation's second copy (reader to lookahead) is gone.
//
// # Buffer ownership and pooling
//
// Chunk.Data buffers are drawn from a package-level sync.Pool. A chunk's
// buffer is owned by the caller from the moment Next returns it:
//
//   - Callers that keep chunks (chunker.All, tests) simply let the garbage
//     collector reclaim them; no Release is required for correctness.
//   - Streaming consumers (the dedup client's backup pipeline) should call
//     Chunk.Release once the chunk's bytes are no longer referenced. The
//     buffer returns to the pool and is handed out by a later Next call,
//     making the steady-state ingest path allocation-free.
//
// After Release the chunk's Data must not be read or written — the buffer
// may already back another chunk. Releasing the same chunk twice is
// likewise a caller bug. Sub-slices of Data share the buffer, so they die
// with it at Release.
//
// # Deferred fingerprinting
//
// By default Next computes Chunk.Fingerprint (truncated SHA-256 of the
// content) before returning. Params.DeferFingerprint leaves Fingerprint
// zero so a downstream worker pool can hash chunks in parallel instead of
// serializing SHA-256 behind the chunker — the dedup client's backup
// pipeline does exactly that, and skips plaintext fingerprinting entirely
// for encryption modes that never use it.
package chunker
