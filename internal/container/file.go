package container

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"freqdedup/internal/fphash"
)

// ErrCorrupt is returned when a store file fails structural validation or
// a container record fails its checksum. It is distinct from ErrNotFound:
// the data is there but cannot be trusted.
var ErrCorrupt = errors.New("container: store file corrupt")

// On-disk layout constants. See doc.go for the full format description.
const (
	fileMagic   = 0x46444346 // "FDCF": freqdedup container file
	fileVersion = 1
	// fileHeaderLen is magic + version + shard + containerBytes, u32 each.
	fileHeaderLen = 16

	recordMagic = 0x46444331 // "FDC1": one sealed container record
	// recordHeaderLen is magic + id + entryCount + dataBytes, u32 each.
	recordHeaderLen = 16
	// entryMetaLen is one index-header entry: fingerprint + u32 size.
	entryMetaLen = fphash.Size + 4
	// recordTrailerLen is the CRC32 over the whole record.
	recordTrailerLen = 4
)

// shardFileName returns the file holding a shard's containers.
func shardFileName(shard int) string { return fmt.Sprintf("shard-%04d.fdc", shard) }

// shardFile is one shard's append-only container file plus its in-memory
// record index. mu serializes every file operation of the shard: appends
// are naturally serial, and reads ride the same lock so a GC Rewrite can
// swap the file handle without a reader holding the old one. Cross-shard
// operations run fully in parallel.
type shardFile struct {
	mu      sync.Mutex
	f       *os.File
	offsets []int64 // byte offset of each sealed record, in ID order
	size    int64   // current end-of-file offset
	scratch []byte  // record serialization buffer, reused across Seals
}

// FileBackend persists sealed containers in per-shard append-only files
// under one directory. Each seal appends a self-contained record (a small
// index header of fingerprints and sizes, then the chunk data, then a
// CRC32) and fsyncs, so a container acknowledged as sealed survives a
// crash; a record torn by a crash mid-append is detected and discarded on
// Open. GC rewrites a shard by writing a fresh file and renaming it over
// the old one, so compaction is atomic too.
type FileBackend struct {
	dir            string
	containerBytes int
	shards         []*shardFile
}

// CreateFileBackend initializes a new store directory with one empty
// container file per shard and returns the backend. It fails if the
// directory already holds a store.
func CreateFileBackend(dir string, shards, containerBytes int) (*FileBackend, error) {
	if shards < 1 {
		return nil, fmt.Errorf("container: backend shard count must be positive, got %d", shards)
	}
	if containerBytes <= 0 {
		return nil, fmt.Errorf("container: capacity must be positive, got %d", containerBytes)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("container: create store dir: %w", err)
	}
	if _, err := os.Stat(filepath.Join(dir, shardFileName(0))); err == nil {
		return nil, fmt.Errorf("container: %s already holds a store (use OpenFileBackend)", dir)
	}
	b := &FileBackend{dir: dir, containerBytes: containerBytes, shards: make([]*shardFile, shards)}
	var hdr [fileHeaderLen]byte
	for i := range b.shards {
		binary.LittleEndian.PutUint32(hdr[0:], fileMagic)
		binary.LittleEndian.PutUint32(hdr[4:], fileVersion)
		binary.LittleEndian.PutUint32(hdr[8:], uint32(i))
		binary.LittleEndian.PutUint32(hdr[12:], uint32(containerBytes))
		f, err := os.OpenFile(filepath.Join(dir, shardFileName(i)), os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
		if err != nil {
			b.Close()
			return nil, fmt.Errorf("container: create shard file: %w", err)
		}
		_, err = f.Write(hdr[:])
		if err == nil {
			err = f.Sync()
		}
		if err != nil {
			f.Close()
			b.Close()
			return nil, fmt.Errorf("container: write shard header: %w", err)
		}
		b.shards[i] = &shardFile{f: f, size: fileHeaderLen}
	}
	if err := syncDir(dir); err != nil {
		b.Close()
		return nil, err
	}
	return b, nil
}

// OpenFileBackend opens an existing store directory, validating every
// shard file's header and record chain. A record torn by a crash
// mid-append (an incomplete header or body at the end of a file) is
// discarded by truncating the file back to the last complete record —
// only containers whose Seal was acknowledged are durable. Structural
// damage anywhere else (bad magic, out-of-sequence IDs, a short file
// header, shards disagreeing on capacity) returns ErrCorrupt.
func OpenFileBackend(dir string) (*FileBackend, error) {
	names, err := filepath.Glob(filepath.Join(dir, "shard-*.fdc"))
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("container: %s holds no store (no shard files)", dir)
	}
	sort.Strings(names)
	b := &FileBackend{dir: dir, shards: make([]*shardFile, len(names))}
	for i, name := range names {
		if filepath.Base(name) != shardFileName(i) {
			b.Close()
			return nil, fmt.Errorf("%w: shard files not dense at %s", ErrCorrupt, name)
		}
		sf, capacity, err := openShardFile(name, i)
		if err != nil {
			b.Close()
			return nil, err
		}
		if i == 0 {
			b.containerBytes = capacity
		} else if capacity != b.containerBytes {
			sf.f.Close()
			b.Close()
			return nil, fmt.Errorf("%w: shard %d capacity %d, shard 0 has %d",
				ErrCorrupt, i, capacity, b.containerBytes)
		}
		b.shards[i] = sf
	}
	return b, nil
}

// openShardFile validates one shard file and builds its record index,
// truncating a torn tail record left by a crash.
func openShardFile(name string, shard int) (*shardFile, int, error) {
	f, err := os.OpenFile(name, os.O_RDWR, 0)
	if err != nil {
		return nil, 0, err
	}
	fail := func(err error) (*shardFile, int, error) {
		f.Close()
		return nil, 0, err
	}
	st, err := f.Stat()
	if err != nil {
		return fail(err)
	}
	size := st.Size()
	var hdr [fileHeaderLen]byte
	if size < fileHeaderLen {
		return fail(fmt.Errorf("%w: %s shorter than its header", ErrCorrupt, name))
	}
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		return fail(err)
	}
	if m := binary.LittleEndian.Uint32(hdr[0:]); m != fileMagic {
		return fail(fmt.Errorf("%w: %s has bad magic %#x", ErrCorrupt, name, m))
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != fileVersion {
		return fail(fmt.Errorf("%w: %s has unsupported version %d", ErrCorrupt, name, v))
	}
	if s := binary.LittleEndian.Uint32(hdr[8:]); int(s) != shard {
		return fail(fmt.Errorf("%w: %s labeled shard %d", ErrCorrupt, name, s))
	}
	capacity := int(binary.LittleEndian.Uint32(hdr[12:]))
	if capacity <= 0 {
		return fail(fmt.Errorf("%w: %s has capacity %d", ErrCorrupt, name, capacity))
	}

	sf := &shardFile{f: f}
	pos := int64(fileHeaderLen)
	var rec [recordHeaderLen]byte
	for pos < size {
		if pos+recordHeaderLen > size {
			break // torn tail: header itself incomplete
		}
		if _, err := f.ReadAt(rec[:], pos); err != nil {
			return fail(err)
		}
		if m := binary.LittleEndian.Uint32(rec[0:]); m != recordMagic {
			return fail(fmt.Errorf("%w: %s: bad record magic %#x at offset %d", ErrCorrupt, name, m, pos))
		}
		id := binary.LittleEndian.Uint32(rec[4:])
		if int(id) != len(sf.offsets) {
			return fail(fmt.Errorf("%w: %s: container %d at position %d", ErrCorrupt, name, id, len(sf.offsets)))
		}
		entries := int64(binary.LittleEndian.Uint32(rec[8:]))
		dataBytes := int64(binary.LittleEndian.Uint32(rec[12:]))
		end := pos + recordHeaderLen + entries*entryMetaLen + dataBytes + recordTrailerLen
		if end > size {
			break // torn tail: body incomplete
		}
		sf.offsets = append(sf.offsets, pos)
		pos = end
	}
	if pos < size {
		// Discard the torn tail so future appends start at a record
		// boundary.
		if err := f.Truncate(pos); err != nil {
			return fail(fmt.Errorf("container: truncate torn tail of %s: %w", name, err))
		}
		if err := f.Sync(); err != nil {
			return fail(err)
		}
	}
	sf.size = pos
	return sf, capacity, nil
}

// buildRecord serializes c into sf.scratch as one container record.
func (sf *shardFile) buildRecord(c *Container) ([]byte, error) {
	dataBytes := 0
	for _, e := range c.Entries {
		if len(e.Data) != int(e.Size) {
			return nil, fmt.Errorf("container: entry %v has %d data bytes, size says %d (metadata-only entries cannot be persisted)",
				e.FP, len(e.Data), e.Size)
		}
		dataBytes += int(e.Size)
	}
	n := recordHeaderLen + len(c.Entries)*entryMetaLen + dataBytes + recordTrailerLen
	if cap(sf.scratch) < n {
		sf.scratch = make([]byte, n)
	}
	buf := sf.scratch[:n]
	binary.LittleEndian.PutUint32(buf[0:], recordMagic)
	binary.LittleEndian.PutUint32(buf[4:], uint32(c.ID))
	binary.LittleEndian.PutUint32(buf[8:], uint32(len(c.Entries)))
	binary.LittleEndian.PutUint32(buf[12:], uint32(dataBytes))
	off := recordHeaderLen
	for _, e := range c.Entries {
		copy(buf[off:], e.FP[:])
		binary.LittleEndian.PutUint32(buf[off+fphash.Size:], e.Size)
		off += entryMetaLen
	}
	for _, e := range c.Entries {
		copy(buf[off:], e.Data)
		off += len(e.Data)
	}
	binary.LittleEndian.PutUint32(buf[off:], crc32.ChecksumIEEE(buf[:off]))
	return buf, nil
}

// Seal appends the container's record to the shard file and fsyncs;
// durability is acknowledged only by a nil return.
func (b *FileBackend) Seal(shard int, c *Container) error {
	sf := b.shards[shard]
	sf.mu.Lock()
	defer sf.mu.Unlock()
	if c.ID != len(sf.offsets) {
		return fmt.Errorf("container: seal of container %d on shard %d, want %d", c.ID, shard, len(sf.offsets))
	}
	buf, err := sf.buildRecord(c)
	if err != nil {
		return err
	}
	if _, err := sf.f.WriteAt(buf, sf.size); err != nil {
		sf.discardTail()
		return fmt.Errorf("container: append container %d: %w", c.ID, err)
	}
	if err := sf.f.Sync(); err != nil {
		sf.discardTail()
		return fmt.Errorf("container: sync container %d: %w", c.ID, err)
	}
	sf.offsets = append(sf.offsets, sf.size)
	sf.size += int64(len(buf))
	return nil
}

// discardTail removes whatever a failed append left past the last good
// record, so a later successful Seal does not bury garbage mid-file
// (which Open would then reject as structural corruption instead of
// recovering as a torn tail). Best-effort: if the truncate fails too,
// Open's tail recovery still handles the case where nothing was
// appended afterwards.
func (sf *shardFile) discardTail() {
	if sf.f.Truncate(sf.size) == nil {
		_ = sf.f.Sync()
	}
}

// readRecord reads and validates the record at offset, returning the
// container. With withData false the data region is skipped and the CRC
// (which covers it) is not verified.
func (sf *shardFile) readRecord(shard int, offset int64, withData bool) (*Container, error) {
	var hdr [recordHeaderLen]byte
	if _, err := sf.f.ReadAt(hdr[:], offset); err != nil {
		return nil, fmt.Errorf("container: read record header: %w", err)
	}
	if m := binary.LittleEndian.Uint32(hdr[0:]); m != recordMagic {
		return nil, fmt.Errorf("%w: bad record magic %#x", ErrCorrupt, m)
	}
	id := int(binary.LittleEndian.Uint32(hdr[4:]))
	entries := int(binary.LittleEndian.Uint32(hdr[8:]))
	dataBytes := int(binary.LittleEndian.Uint32(hdr[12:]))
	metaLen := entries * entryMetaLen
	bodyLen := metaLen + dataBytes + recordTrailerLen
	if !withData {
		bodyLen = metaLen
	}
	body := make([]byte, bodyLen)
	if _, err := sf.f.ReadAt(body, offset+recordHeaderLen); err != nil {
		return nil, fmt.Errorf("container: read record body: %w", err)
	}
	if withData {
		stored := binary.LittleEndian.Uint32(body[metaLen+dataBytes:])
		crc := crc32.ChecksumIEEE(hdr[:])
		crc = crc32.Update(crc, crc32.IEEETable, body[:metaLen+dataBytes])
		if crc != stored {
			return nil, fmt.Errorf("%w: container %d checksum mismatch (shard %d)", ErrCorrupt, id, shard)
		}
	}
	c := &Container{ID: id, Entries: make([]Entry, entries)}
	data := body[metaLen:]
	dataOff := 0
	for i := range c.Entries {
		var fp fphash.Fingerprint
		copy(fp[:], body[i*entryMetaLen:])
		size := binary.LittleEndian.Uint32(body[i*entryMetaLen+fphash.Size:])
		e := Entry{FP: fp, Size: size}
		if withData {
			if dataOff+int(size) > dataBytes {
				return nil, fmt.Errorf("%w: container %d entry sizes exceed data region", ErrCorrupt, id)
			}
			e.Data = data[dataOff : dataOff+int(size) : dataOff+int(size)]
		}
		dataOff += int(size)
		c.Bytes += int(size)
		c.Entries[i] = e
	}
	if withData && dataOff != dataBytes {
		return nil, fmt.Errorf("%w: container %d entry sizes sum to %d, data region is %d", ErrCorrupt, id, dataOff, dataBytes)
	}
	return c, nil
}

// Load reads a sealed container from the shard file, verifying its CRC.
func (b *FileBackend) Load(shard, id int) (*Container, error) {
	sf := b.shards[shard]
	sf.mu.Lock()
	defer sf.mu.Unlock()
	if id < 0 || id >= len(sf.offsets) {
		return nil, ErrNotFound
	}
	return sf.readRecord(shard, sf.offsets[id], true)
}

// Scan visits the shard's sealed containers in ID order. With withData
// false only each record's index header is read (fingerprints and sizes;
// Entry.Data stays nil), which is how a reopened store rebuilds its
// fingerprint index without reading chunk data.
func (b *FileBackend) Scan(shard int, withData bool, fn func(*Container) error) error {
	sf := b.shards[shard]
	sf.mu.Lock()
	defer sf.mu.Unlock()
	for _, off := range sf.offsets {
		c, err := sf.readRecord(shard, off, withData)
		if err != nil {
			return err
		}
		if err := fn(c); err != nil {
			return err
		}
	}
	return nil
}

// Rewrite atomically replaces the shard's file with one holding cs: the
// new generation is written to a temporary file, fsynced, and renamed
// over the old file, so a crash mid-compaction leaves the previous
// generation intact.
func (b *FileBackend) Rewrite(shard int, cs []*Container) error {
	sf := b.shards[shard]
	sf.mu.Lock()
	defer sf.mu.Unlock()

	name := filepath.Join(b.dir, shardFileName(shard))
	tmpName := name + ".rewrite"
	tmp, err := os.OpenFile(tmpName, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("container: rewrite shard %d: %w", shard, err)
	}
	abort := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	var hdr [fileHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:], fileMagic)
	binary.LittleEndian.PutUint32(hdr[4:], fileVersion)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(shard))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(b.containerBytes))
	if _, err := tmp.Write(hdr[:]); err != nil {
		return abort(err)
	}
	offsets := make([]int64, 0, len(cs))
	size := int64(fileHeaderLen)
	for i, c := range cs {
		if c.ID != i {
			return abort(fmt.Errorf("container: rewrite container ID %d at position %d", c.ID, i))
		}
		buf, err := sf.buildRecord(c)
		if err != nil {
			return abort(err)
		}
		if _, err := tmp.Write(buf); err != nil {
			return abort(err)
		}
		offsets = append(offsets, size)
		size += int64(len(buf))
	}
	if err := tmp.Sync(); err != nil {
		return abort(err)
	}
	if err := os.Rename(tmpName, name); err != nil {
		return abort(err)
	}
	// The rename is the commit point: from here the on-disk shard is the
	// new generation, so the in-memory state must follow unconditionally
	// — the renamed temp handle is the new shard file; retire the old
	// one. The directory sync afterwards is best-effort, like every
	// other directory sync here.
	sf.f.Close()
	sf.f = tmp
	sf.offsets = offsets
	sf.size = size
	_ = syncDir(b.dir)
	return nil
}

// Shards returns the shard count.
func (b *FileBackend) Shards() int { return len(b.shards) }

// ContainerBytes returns the container capacity recorded in the store's
// file headers, so a reopened store packs with the same geometry.
func (b *FileBackend) ContainerBytes() int { return b.containerBytes }

// Dir returns the store directory.
func (b *FileBackend) Dir() string { return b.dir }

// Close closes every shard file. Sealed data is already durable; Close
// exists to release descriptors.
func (b *FileBackend) Close() error {
	var first error
	for _, sf := range b.shards {
		if sf == nil || sf.f == nil {
			continue
		}
		sf.mu.Lock()
		err := sf.f.Close()
		sf.mu.Unlock()
		if err != nil && first == nil {
			first = err
		}
	}
	return first
}

// syncDir fsyncs a directory so renames and file creations within it are
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	// Directory fsync is best-effort: some filesystems reject it.
	_ = d.Sync()
	return nil
}
