package ddfs

import (
	"testing"

	"freqdedup/internal/fphash"
	"freqdedup/internal/trace"
)

// mkBackup builds a fixed-size-chunk backup from fingerprint IDs.
func mkBackup(label string, size uint32, ids ...uint64) *trace.Backup {
	b := &trace.Backup{Label: label}
	for _, id := range ids {
		b.Chunks = append(b.Chunks, trace.ChunkRef{FP: fphash.FromUint64(id), Size: size})
	}
	return b
}

// seq returns ids [from, to).
func seq(from, to uint64) []uint64 {
	out := make([]uint64, 0, to-from)
	for i := from; i < to; i++ {
		out = append(out, i)
	}
	return out
}

func TestFirstBackupAllUnique(t *testing.T) {
	s := New(Config{ContainerBytes: 40960, ExpectedFingerprints: 1000})
	st := s.StoreBackup(mkBackup("1", 4096, seq(1, 101)...))
	if s.UniqueChunks() != 100 {
		t.Fatalf("unique = %d, want 100", s.UniqueChunks())
	}
	// All 100 fingerprints written to the index exactly once: 32 B each.
	if st.UpdateBytes != 100*EntryBytes {
		t.Fatalf("update bytes = %d, want %d", st.UpdateBytes, 100*EntryBytes)
	}
	// No duplicates, so no container loading.
	if st.LoadingBytes != 0 {
		t.Fatalf("loading bytes = %d, want 0", st.LoadingBytes)
	}
	// Fresh Bloom filter keeps index lookups near zero (only false
	// positives could cause any).
	if st.IndexBytes > 5*EntryBytes {
		t.Fatalf("index bytes = %d, expected ~0 on first backup", st.IndexBytes)
	}
}

func TestSecondIdenticalBackupLoadsContainers(t *testing.T) {
	cfg := Config{ContainerBytes: 40960, ExpectedFingerprints: 1000} // 10 chunks per container
	s := New(cfg)
	b := mkBackup("1", 4096, seq(1, 101)...)
	s.StoreBackup(b)
	st := s.StoreBackup(mkBackup("2", 4096, seq(1, 101)...))
	if st.UpdateBytes != 0 {
		t.Fatalf("identical backup caused %d update bytes", st.UpdateBytes)
	}
	if s.UniqueChunks() != 100 {
		t.Fatalf("unique = %d, want 100", s.UniqueChunks())
	}
	// Each of the 10 containers is loaded once (first chunk misses the
	// cache, the other 9 hit): 10 loads x 10 entries x 32 B.
	if st.LoadingBytes != 10*10*EntryBytes {
		t.Fatalf("loading bytes = %d, want %d", st.LoadingBytes, 10*10*EntryBytes)
	}
	// One index lookup per container load.
	if st.IndexBytes != 10*EntryBytes {
		t.Fatalf("index bytes = %d, want %d", st.IndexBytes, 10*EntryBytes)
	}
	if s.CacheHitRate() < 0.85 {
		t.Fatalf("cache hit rate %.2f, want ~0.9 from locality prefetch", s.CacheHitRate())
	}
}

func TestDuplicateWithinBufferedContainer(t *testing.T) {
	s := New(Config{ContainerBytes: 1 << 20, ExpectedFingerprints: 100})
	// Duplicate appears while the container is still buffered in memory:
	// must not be stored twice and must not hit the on-disk index.
	st := s.StoreBackup(mkBackup("1", 4096, 1, 2, 1, 3))
	if s.UniqueChunks() != 3 {
		t.Fatalf("unique = %d, want 3", s.UniqueChunks())
	}
	if s.Duplicates() != 1 {
		t.Fatalf("duplicates = %d, want 1", s.Duplicates())
	}
	if st.IndexBytes != 0 {
		t.Fatalf("buffered duplicate caused %d index bytes", st.IndexBytes)
	}
}

func TestBoundedCacheIncreasesLoading(t *testing.T) {
	mk := func(cacheBytes uint64) AccessStats {
		s := New(Config{
			ContainerBytes:       40960,
			CacheBytes:           cacheBytes,
			ExpectedFingerprints: 10000,
		})
		s.StoreBackup(mkBackup("1", 4096, seq(1, 1001)...))
		// Second backup revisits everything twice, interleaved, to stress
		// eviction.
		ids := append(seq(1, 1001), seq(1, 1001)...)
		return s.StoreBackup(mkBackup("2", 4096, ids...))
	}
	unbounded := mk(0)
	tiny := mk(5 * EntryBytes) // holds only 5 fingerprints
	if tiny.LoadingBytes <= unbounded.LoadingBytes {
		t.Fatalf("tiny cache loading %d <= unbounded %d; eviction has no effect",
			tiny.LoadingBytes, unbounded.LoadingBytes)
	}
}

func TestLoadingDominatesOnBackupWorkload(t *testing.T) {
	// Paper (Section 7.4.2): loading access contributes >74% of metadata
	// access volume across a multi-backup workload with high redundancy.
	s := New(Config{ContainerBytes: 40960, CacheBytes: 50 * EntryBytes, ExpectedFingerprints: 10000})
	base := seq(1, 2001)
	s.StoreBackup(mkBackup("1", 4096, base...))
	var total AccessStats
	for i := 0; i < 4; i++ {
		// Subsequent backups: mostly duplicates, small unique tail.
		ids := append(append([]uint64{}, base...), seq(uint64(3000+i*100), uint64(3100+i*100))...)
		st := s.StoreBackup(mkBackup("n", 4096, ids...))
		total.add(st)
	}
	if frac := float64(total.LoadingBytes) / float64(total.Total()); frac < 0.7 {
		t.Fatalf("loading fraction %.2f, expected dominant (>0.7)", frac)
	}
}

func TestTotalsAccumulate(t *testing.T) {
	s := New(Config{ContainerBytes: 40960, ExpectedFingerprints: 1000})
	a := s.StoreBackup(mkBackup("1", 4096, seq(1, 51)...))
	b := s.StoreBackup(mkBackup("2", 4096, seq(1, 51)...))
	tot := s.Totals()
	if tot.Total() != a.Total()+b.Total() {
		t.Fatalf("totals %d != %d + %d", tot.Total(), a.Total(), b.Total())
	}
}

func TestStatsAddAndTotal(t *testing.T) {
	a := AccessStats{UpdateBytes: 1, IndexBytes: 2, LoadingBytes: 3}
	b := AccessStats{UpdateBytes: 10, IndexBytes: 20, LoadingBytes: 30}
	a.add(b)
	if a.UpdateBytes != 11 || a.IndexBytes != 22 || a.LoadingBytes != 33 {
		t.Fatalf("add wrong: %+v", a)
	}
	if a.Total() != 66 {
		t.Fatalf("total = %d, want 66", a.Total())
	}
}

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig(1000)
	if cfg.ContainerBytes != 4<<20 || cfg.BloomFPP != 0.01 || cfg.ExpectedFingerprints != 1000 {
		t.Fatalf("default config wrong: %+v", cfg)
	}
	// Zero-value fields are defaulted by New.
	s := New(Config{})
	s.StoreBackup(mkBackup("1", 4096, 1, 2, 3))
	if s.UniqueChunks() != 3 {
		t.Fatal("zero-config system does not work")
	}
}

func TestContainersCount(t *testing.T) {
	s := New(Config{ContainerBytes: 8192, ExpectedFingerprints: 100})
	s.StoreBackup(mkBackup("1", 4096, seq(1, 11)...)) // 10 chunks, 2 per container
	if got := s.Containers(); got != 5 {
		t.Fatalf("containers = %d, want 5", got)
	}
}

func TestContainerSpreadSequential(t *testing.T) {
	// 100 chunks, 10 per container, restored in storage order: 10 distinct
	// containers, 9 switches, 10 reads regardless of cache size >= 1.
	s := New(Config{ContainerBytes: 40960, ExpectedFingerprints: 1000})
	b := mkBackup("1", 4096, seq(1, 101)...)
	s.StoreBackup(b)
	st := s.ContainerSpread(b, 1)
	if st.Chunks != 100 {
		t.Fatalf("chunks = %d, want 100", st.Chunks)
	}
	if st.DistinctContainers != 10 {
		t.Fatalf("distinct containers = %d, want 10", st.DistinctContainers)
	}
	if st.ContainerSwitches != 9 {
		t.Fatalf("switches = %d, want 9", st.ContainerSwitches)
	}
	if st.ReadsWithCache != 10 {
		t.Fatalf("reads = %d, want 10", st.ReadsWithCache)
	}
}

func TestContainerSpreadInterleaved(t *testing.T) {
	s := New(Config{ContainerBytes: 40960, ExpectedFingerprints: 1000})
	s.StoreBackup(mkBackup("1", 4096, seq(1, 101)...))
	// Restore order ping-pongs between two containers: a 1-container cache
	// re-reads on every switch; a 2-container cache reads each once.
	var ids []uint64
	for i := 0; i < 10; i++ {
		ids = append(ids, uint64(1+i), uint64(11+i)) // containers 0 and 1
	}
	b := mkBackup("r", 4096, ids...)
	tight := s.ContainerSpread(b, 1)
	roomy := s.ContainerSpread(b, 2)
	if tight.ReadsWithCache != 20 {
		t.Fatalf("1-container cache reads = %d, want 20", tight.ReadsWithCache)
	}
	if roomy.ReadsWithCache != 2 {
		t.Fatalf("2-container cache reads = %d, want 2", roomy.ReadsWithCache)
	}
	if tight.ContainerSwitches != 19 {
		t.Fatalf("switches = %d, want 19", tight.ContainerSwitches)
	}
}

func TestLocate(t *testing.T) {
	s := New(Config{ContainerBytes: 40960, ExpectedFingerprints: 100})
	s.StoreBackup(mkBackup("1", 4096, seq(1, 25)...))
	if _, ok := s.Locate(fphash.FromUint64(1)); !ok {
		t.Fatal("stored chunk not locatable")
	}
	if _, ok := s.Locate(fphash.FromUint64(999)); ok {
		t.Fatal("absent chunk locatable")
	}
}
