// Attackdemo: generate the synthetic backup chain (the paper's
// Lillibridge-style dataset), encrypt the latest backup with baseline MLE,
// and run all three inference attacks against it using each prior backup
// as the auxiliary information — a compact version of Figure 5(b).
package main

import (
	"fmt"

	"freqdedup"
)

func main() {
	params := freqdedup.DefaultSyntheticParams()
	params.Snapshots = 6 // keep the demo quick
	dataset := freqdedup.GenerateSynthetic(params)

	stats := dataset.Stats()
	fmt.Printf("synthetic dataset: %d backups, %d chunks (%d unique), %.1fx dedup\n\n",
		len(dataset.Backups), stats.LogicalChunks, stats.UniqueChunks, stats.Ratio())

	target := dataset.Backups[len(dataset.Backups)-1]
	enc := freqdedup.EncryptMLE(target)
	fmt.Printf("target: backup %s (%d unique ciphertext chunks)\n\n",
		target.Label, enc.Backup.UniqueCount())

	fmt.Printf("%-10s | %-8s | %-9s | %-9s\n", "auxiliary", "basic", "locality", "advanced")
	fmt.Println("-----------+----------+-----------+----------")
	for _, aux := range dataset.Backups[:len(dataset.Backups)-1] {
		basic := freqdedup.InferenceRate(
			freqdedup.BasicAttack(enc.Backup, aux), enc.Truth, enc.Backup)

		cfg := freqdedup.DefaultLocalityConfig()
		locality := freqdedup.InferenceRate(
			freqdedup.LocalityAttack(enc.Backup, aux, cfg), enc.Truth, enc.Backup)

		cfg.SizeAware = true
		advanced := freqdedup.InferenceRate(
			freqdedup.LocalityAttack(enc.Backup, aux, cfg), enc.Truth, enc.Backup)

		fmt.Printf("%-10s | %7.3f%% | %8.2f%% | %8.2f%%\n",
			aux.Label, basic*100, locality*100, advanced*100)
	}
	fmt.Println("\nThe locality-based attack exploits chunk co-occurrence to infer")
	fmt.Println("far more chunks than classical frequency analysis; the advanced")
	fmt.Println("variant adds chunk-size classification on top.")
}
