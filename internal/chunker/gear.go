package chunker

import (
	"fmt"
	"io"
	"math/bits"

	"freqdedup/internal/fphash"
)

// Algorithm selects the rolling-hash family of a content-defined chunker.
// The two algorithms produce different cut points for the same input: a
// repository chunked with one does not deduplicate against data chunked
// with the other. The zero value is AlgoRabin, the original format.
type Algorithm int

const (
	// AlgoRabin cuts with the rolling Rabin fingerprint (the original
	// freqdedup format; see ContentDefined).
	AlgoRabin Algorithm = iota
	// AlgoGear cuts with a gear hash (FastCDC-style): one table lookup,
	// one shift, and one add per byte, roughly 3x the rolling speed of
	// Rabin. Explicitly a new format — cut points are NOT compatible with
	// AlgoRabin.
	AlgoGear
)

// String implements fmt.Stringer for diagnostics and bench labels.
func (a Algorithm) String() string {
	switch a {
	case AlgoRabin:
		return "rabin"
	case AlgoGear:
		return "gear"
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// New returns the content-defined chunker selected by p.Algorithm reading
// from r. It is the one constructor pipeline code should use; the concrete
// constructors remain for callers that need the specific type.
func New(r io.Reader, p Params) (Chunker, error) {
	switch p.Algorithm {
	case AlgoRabin:
		return NewContentDefined(r, p)
	case AlgoGear:
		return NewGear(r, p)
	}
	return nil, fmt.Errorf("chunker: unknown algorithm %d", int(p.Algorithm))
}

// gearWindow is the effective window of the gear hash: h = h<<1 + t[b]
// shifts each byte's contribution out of the 64-bit state after 64
// positions, so the hash at any position depends on exactly the trailing
// 64 bytes (fewer within the first 64 bytes of a chunk).
const gearWindow = 64

// GearWindow is the gear hash's effective window in bytes. Multi-stream
// gear chunking (NewMultiGear) requires Params.Min >= GearWindow: past
// that age every position's hash is independent of where its chunk
// started, which is what lets segments be scanned in parallel.
const GearWindow = gearWindow

// gearTable is the byte-to-noise table of the gear hash. It is generated
// by a fixed splitmix64 sequence so the table — which IS the chunk-cut
// format — is deterministic across builds and platforms.
var gearTable = func() (t [256]uint64) {
	s := uint64(0x5a1f0e6c2b3d4958)
	for i := range t {
		s += 0x9e3779b97f4a7c15
		z := s
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		t[i] = z ^ (z >> 31)
	}
	return t
}()

// gearMask returns the boundary mask for an average chunk size: the top
// log2(avg) bits of the hash. Top bits are fed by every byte of the
// window (lower table bits reach them through the shift chain and carry
// propagation), where low bits would see only the newest bytes. avg must
// be a power of two (enforced by Params.Validate).
func gearMask(avg int) uint64 {
	k := bits.TrailingZeros(uint(avg))
	if k == 0 {
		return 0 // avg == 1: every position is a boundary
	}
	return ((uint64(1) << k) - 1) << (64 - k)
}

// gearCut returns the boundary position within data (1 <= cut <=
// len(data)), under the same contract as ContentDefined.findCut: data is
// either Max bytes long or the final remainder of the stream, the hash
// restarts at the chunk's first byte, and the first position at or past
// min where h&mask == 0 cuts the chunk. Because the gear hash forgets
// bytes older than gearWindow, hashing starts at min-gearWindow instead
// of 0 — the cut-point-skipping trick that makes gear chunking fast —
// while remaining bit-identical to the byte-at-a-time reference.
func gearCut(data []byte, min int, mask uint64) int {
	if len(data) <= min {
		return len(data)
	}
	var h uint64
	pre := min - gearWindow
	if pre < 0 {
		pre = 0
	}
	for _, b := range data[pre:min] {
		h = h<<1 + gearTable[b]
	}
	if h&mask == 0 {
		return min
	}
	for i := min; i < len(data); i++ {
		h = h<<1 + gearTable[data[i]]
		if h&mask == 0 {
			return i + 1
		}
	}
	return len(data)
}

// Gear cuts the input at content-defined boundaries using a gear hash:
// a boundary is declared at the first position past Min where the top
// log2(Avg) hash bits are all zero, or at Max bytes. It has the same
// pooled-buffer ownership contract as ContentDefined and ignores
// Params.Window (the gear window is fixed at 64 bytes by construction).
type Gear struct {
	la   lookahead
	p    Params
	mask uint64
}

var _ Chunker = (*Gear)(nil)

// NewGear returns a gear-hash chunker reading from r.
func NewGear(r io.Reader, p Params) (*Gear, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Gear{
		la:   newLookahead(r, lookaheadSize(p.Max)),
		p:    p,
		mask: gearMask(p.Avg),
	}, nil
}

// Next implements Chunker.
func (g *Gear) Next() (Chunk, error) {
	data, err := g.la.take(g.p.Max)
	if err != nil {
		return Chunk{}, err
	}
	cut := gearCut(data, g.p.Min, g.mask)
	buf := getBuf(cut)
	copy(buf, data[:cut])
	ch := Chunk{Data: buf, Offset: g.la.offset}
	if !g.p.DeferFingerprint {
		ch.Fingerprint = fphash.FromBytes(buf)
	}
	g.la.consume(cut)
	return ch, nil
}

// chunkCountHint estimates how many chunks remain, for All's preallocation.
func (g *Gear) chunkCountHint() int {
	return remainingHint(g.la.r, g.p.Avg)
}
