// Package gcommit implements leader-based group commit: many goroutines
// append records to a shared durable file, then each calls Commit with
// its append's sequence number; one of them becomes the leader, runs the
// file's fsync once, and that single sync acknowledges every append that
// landed before the leader captured its target. Under concurrency, N
// commits collapse into far fewer syncs; a lone commit degenerates to
// exactly the old fsync-per-mutation behavior (plus an optional bounded
// straggler window).
//
// The invariant the package exists to keep: Commit(seq) returns nil only
// after a sync that covers seq — one whose fsync call started after the
// seq'th append completed — has itself returned. No caller is ever
// acknowledged ahead of its durability barrier.
package gcommit

import (
	"sync"
	"time"
)

// Committer coordinates group commit over one durable resource. The
// caller owns a monotonically increasing sequence counter: it assigns
// the next sequence to each append while holding whatever lock orders
// the appends, then calls Commit(seq) with no locks held.
type Committer struct {
	mu   sync.Mutex
	cond *sync.Cond

	// syncFn runs the durability barrier (fsync). It is called with no
	// Committer lock held, and never concurrently with itself.
	syncFn func() error
	// sticky: a sync failure permanently poisons the committer (append
	// streams whose file tail is now in an unknown durable state). When
	// false, a failed round fails only the commits waiting on it, and
	// later commits retry with fresh rounds (idempotent barriers like
	// container-seal passes).
	sticky bool
	// sleep is the straggler timer; a test seam.
	sleep func(time.Duration)

	window      time.Duration
	appended    int64 // highest sequence any Commit has announced
	durable     int64 // highest sequence covered by a successful sync
	syncing     bool  // a leader is inside the window/sync
	err         error // sticky poison (sticky mode only)
	round       int64 // completed sync rounds
	failedRound int64 // round id of the most recent failed round
	lastErr     error // error of the most recent failed round
	syncs       int64 // successful syncFn calls, for batching assertions
}

// New returns a Committer running syncFn as its durability barrier.
func New(syncFn func() error, sticky bool) *Committer {
	c := &Committer{syncFn: syncFn, sticky: sticky, sleep: time.Sleep}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// SetWindow sets the straggler window: a leader waits this long before
// capturing its target and syncing, letting concurrent commits pile into
// the same round. Zero (the default) syncs immediately — batching then
// comes only from absorption, commits that arrive while a sync is in
// flight. A lone committer is delayed by at most the window plus one
// sync.
func (c *Committer) SetWindow(d time.Duration) {
	c.mu.Lock()
	c.window = d
	c.mu.Unlock()
}

// Window returns the configured straggler window.
func (c *Committer) Window() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.window
}

// Err returns the sticky poison error, if a sticky committer has seen a
// sync failure. Callers check it before appending new records behind an
// unsynced, doomed tail.
func (c *Committer) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// Durable returns the highest sequence covered by a successful sync.
func (c *Committer) Durable() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.durable
}

// Syncs returns how many successful sync rounds have run — the
// denominator of the batching ratio, for tests and stats.
func (c *Committer) Syncs() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.syncs
}

// MarkDurable records that every sequence up to seq is durable through
// some out-of-band barrier (e.g. a compaction that rewrote, synced, and
// renamed the whole file). Waiting commits covered by seq are released.
func (c *Committer) MarkDurable(seq int64) {
	c.mu.Lock()
	if seq > c.appended {
		c.appended = seq
	}
	if seq > c.durable {
		c.durable = seq
		c.cond.Broadcast()
	}
	c.mu.Unlock()
}

// Commit blocks until a sync covering seq has returned, leading the sync
// itself if none is running. It returns nil once seq is durable; the
// failing sync's error if the round covering this commit failed; or the
// sticky poison for every commit after a sticky committer's first
// failure.
func (c *Committer) Commit(seq int64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if seq > c.appended {
		c.appended = seq
	}
	entryRound := c.round
	for {
		if c.err != nil {
			return c.err
		}
		if c.durable >= seq {
			return nil
		}
		if c.failedRound > entryRound {
			// A sync failed while this commit was waiting: its records
			// may or may not be durable — fail it rather than guess.
			return c.lastErr
		}
		if c.syncing {
			c.cond.Wait()
			continue
		}
		// Lead a round.
		c.syncing = true
		if w := c.window; w > 0 {
			// Straggler window: let concurrent commits append and join
			// this round before the barrier runs.
			c.mu.Unlock()
			c.sleep(w)
			c.mu.Lock()
		}
		// Capture the target BEFORE the sync: fsync only guarantees
		// writes issued before the call, so sequences appended while the
		// sync is in flight wait for the next round.
		target := c.appended
		c.mu.Unlock()
		err := c.syncFn()
		c.mu.Lock()
		c.syncing = false
		c.round++
		if err != nil {
			c.lastErr = err
			c.failedRound = c.round
			if c.sticky {
				c.err = err
			}
		} else {
			c.syncs++
			if target > c.durable {
				c.durable = target
			}
		}
		c.cond.Broadcast()
	}
}
