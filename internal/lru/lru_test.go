package lru

import (
	"testing"

	"freqdedup/internal/fphash"
)

func fp(v uint64) fphash.Fingerprint { return fphash.FromUint64(v) }

func TestPutGet(t *testing.T) {
	c := New[fphash.Fingerprint, string](0, nil)
	c.Put(fp(1), "one", 8)
	got, ok := c.Get(fp(1))
	if !ok || got != "one" {
		t.Fatalf("Get = %q,%v, want one,true", got, ok)
	}
	if _, ok := c.Get(fp(2)); ok {
		t.Fatal("Get of absent key succeeded")
	}
}

func TestEvictionOrder(t *testing.T) {
	var evicted []uint64
	c := New[fphash.Fingerprint, int](3*8, func(k fphash.Fingerprint, _ int) {
		evicted = append(evicted, k.Uint64())
	})
	c.Put(fp(1), 1, 8)
	c.Put(fp(2), 2, 8)
	c.Put(fp(3), 3, 8)
	// Touch 1 so 2 becomes LRU.
	c.Get(fp(1))
	c.Put(fp(4), 4, 8)
	if len(evicted) != 1 || evicted[0] != 2 {
		t.Fatalf("evicted = %v, want [2]", evicted)
	}
	if !c.Contains(fp(1)) || !c.Contains(fp(3)) || !c.Contains(fp(4)) {
		t.Fatal("wrong entries survived eviction")
	}
}

func TestByteBoundedEviction(t *testing.T) {
	c := New[fphash.Fingerprint, int](100, nil)
	c.Put(fp(1), 1, 60)
	c.Put(fp(2), 2, 60) // exceeds 100 -> evict 1
	if c.Contains(fp(1)) {
		t.Fatal("entry 1 should have been evicted by byte bound")
	}
	if c.Used() != 60 {
		t.Fatalf("Used = %d, want 60", c.Used())
	}
}

func TestOversizedEntryRejected(t *testing.T) {
	c := New[fphash.Fingerprint, int](50, nil)
	c.Put(fp(1), 1, 100)
	if c.Len() != 0 || c.Used() != 0 {
		t.Fatalf("oversized entry was admitted: len=%d used=%d", c.Len(), c.Used())
	}
}

func TestUpdateExistingAdjustsCost(t *testing.T) {
	c := New[fphash.Fingerprint, int](100, nil)
	c.Put(fp(1), 1, 10)
	c.Put(fp(1), 2, 30)
	if c.Used() != 30 {
		t.Fatalf("Used = %d, want 30 after cost update", c.Used())
	}
	if v, _ := c.Get(fp(1)); v != 2 {
		t.Fatalf("value = %d, want 2", v)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
}

func TestUpdateMovesToFront(t *testing.T) {
	c := New[fphash.Fingerprint, int](2*8, nil)
	c.Put(fp(1), 1, 8)
	c.Put(fp(2), 2, 8)
	c.Put(fp(1), 10, 8) // refresh 1; 2 becomes LRU
	c.Put(fp(3), 3, 8)
	if c.Contains(fp(2)) {
		t.Fatal("entry 2 should be evicted (LRU after update of 1)")
	}
	if !c.Contains(fp(1)) {
		t.Fatal("updated entry 1 should survive")
	}
}

func TestRemove(t *testing.T) {
	c := New[fphash.Fingerprint, int](0, nil)
	c.Put(fp(1), 1, 8)
	if !c.Remove(fp(1)) {
		t.Fatal("Remove returned false for present key")
	}
	if c.Remove(fp(1)) {
		t.Fatal("Remove returned true for absent key")
	}
	if c.Used() != 0 || c.Len() != 0 {
		t.Fatal("Remove did not release resources")
	}
}

func TestStats(t *testing.T) {
	c := New[fphash.Fingerprint, int](0, nil)
	c.Put(fp(1), 1, 8)
	c.Get(fp(1))
	c.Get(fp(2))
	h, m, _ := c.Stats()
	if h != 1 || m != 1 {
		t.Fatalf("stats = %d hits %d misses, want 1/1", h, m)
	}
}

func TestContainsDoesNotAffectRecency(t *testing.T) {
	c := New[fphash.Fingerprint, int](2*8, nil)
	c.Put(fp(1), 1, 8)
	c.Put(fp(2), 2, 8)
	c.Contains(fp(1)) // must NOT refresh 1
	c.Put(fp(3), 3, 8)
	if c.Contains(fp(1)) {
		t.Fatal("Contains refreshed recency; entry 1 should have been evicted")
	}
}

func TestClear(t *testing.T) {
	evictions := 0
	c := New[fphash.Fingerprint, int](0, func(fphash.Fingerprint, int) { evictions++ })
	c.Put(fp(1), 1, 8)
	c.Put(fp(2), 2, 8)
	c.Clear()
	if c.Len() != 0 || c.Used() != 0 {
		t.Fatal("Clear left entries behind")
	}
	if evictions != 0 {
		t.Fatal("Clear must not fire eviction callbacks")
	}
}

func TestUnboundedNeverEvicts(t *testing.T) {
	c := New[fphash.Fingerprint, int](0, nil)
	for i := uint64(0); i < 10000; i++ {
		c.Put(fp(i), int(i), 1<<20)
	}
	if c.Len() != 10000 {
		t.Fatalf("unbounded cache evicted entries: len=%d", c.Len())
	}
	_, _, ev := c.Stats()
	if ev != 0 {
		t.Fatalf("unbounded cache reported %d evictions", ev)
	}
}

// TestNonFingerprintKey exercises the generic key parameter with the
// restore pipeline's key shape: a (shard, container) pair with unit costs,
// bounding the cache by entry count.
func TestNonFingerprintKey(t *testing.T) {
	type containerKey struct{ shard, id int }
	c := New[containerKey, []byte](2, nil)
	c.Put(containerKey{0, 1}, []byte("a"), 1)
	c.Put(containerKey{1, 1}, []byte("b"), 1)
	c.Put(containerKey{0, 2}, []byte("c"), 1) // evicts {0,1}
	if c.Contains(containerKey{0, 1}) {
		t.Fatal("LRU entry survived a unit-cost eviction")
	}
	if v, ok := c.Get(containerKey{1, 1}); !ok || string(v) != "b" {
		t.Fatalf("Get({1,1}) = %q,%v, want b,true", v, ok)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
}

func BenchmarkPutGet(b *testing.B) {
	c := New[fphash.Fingerprint, int](1<<20, nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k := fp(uint64(i % 100000))
		c.Put(k, i, 32)
		c.Get(k)
	}
}
